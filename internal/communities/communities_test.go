package communities

import (
	"net/netip"
	"testing"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
)

// testWorld builds a colocation map with the entities the paper's running
// examples use: Coresite LAX-1 (Los Angeles), Telehouse East (London),
// LINX (London, RS AS8714), AMS-IX (Amsterdam, RS AS6777).
func testWorld(t *testing.T) (*geo.World, *colo.Map) {
	t.Helper()
	world := geo.DefaultWorld()
	b := colo.NewBuilder(world)
	lax1 := colo.Address{Street: "900 N Alameda St", Postcode: "90012", Country: "US"}
	the := colo.Address{Street: "Coriander Ave", Postcode: "E14 2AA", Country: "GB"}
	b.AddFacility(colo.FacilityRecord{
		Source: "peeringdb", Name: "Coresite LAX-1", Operator: "Coresite",
		Addr: lax1, CityHint: "Los Angeles", Members: []bgp.ASN{13030, 20940, 7018},
	})
	b.AddFacility(colo.FacilityRecord{
		Source: "peeringdb", Name: "Telehouse East", Operator: "Telehouse",
		Addr: the, CityHint: "London", Members: []bgp.ASN{13030, 20940, 2914, 8714},
	})
	b.AddIXP(colo.IXPRecord{
		Source: "peeringdb", Name: "LINX", URL: "https://linx.net", CityHint: "London",
		ASNs:          []bgp.ASN{8714},
		LANs:          []netip.Prefix{netip.MustParsePrefix("195.66.224.0/22")},
		Members:       []bgp.ASN{13030, 20940, 2914},
		FacilityAddrs: []colo.Address{the},
	})
	b.AddIXP(colo.IXPRecord{
		Source: "peeringdb", Name: "AMS-IX", URL: "https://ams-ix.net", CityHint: "Amsterdam",
		ASNs:    []bgp.ASN{6777},
		Members: []bgp.ASN{13030, 2914, 1136},
	})
	return world, b.Build()
}

func TestMinePaperExample(t *testing.T) {
	world, cmap := testWorld(t)
	m := NewMiner(world, cmap)

	// The documentation style of Figure 4 / Init7's published scheme.
	docs := []Document{{
		ASN:    13030,
		Source: "irr",
		Text: `BGP communities for customers of AS13030.

13030:51904 - routes received at Coresite LAX-1
13030:51702 - routes received at Telehouse East
13030:4006 - routes received from public peer at LINX
13030:50100 - routes learned in Los Angeles
13030:9999 - announce to all peers only
13030:666 - blackhole these prefixes
2914:410 - example of another operator, ignore`,
	}}
	d := m.Mine(docs)

	if d.Len() != 4 {
		t.Fatalf("dictionary has %d entries, want 4: %+v", d.Len(), d.Entries())
	}

	lax1, _ := cmap.FacilityByAddress(colo.Address{Postcode: "90012", Country: "US"})
	e, ok := d.Lookup(bgp.MakeCommunity(13030, 51904))
	if !ok || e.PoP != colo.FacilityPoP(lax1) {
		t.Errorf("51904 = %+v, ok=%v (want facility %d)", e, ok, lax1)
	}
	if e.Label != "Coresite LAX-1" {
		t.Errorf("label = %q", e.Label)
	}

	the, _ := cmap.FacilityByAddress(colo.Address{Postcode: "E14 2AA", Country: "GB"})
	if e, ok := d.Lookup(bgp.MakeCommunity(13030, 51702)); !ok || e.PoP != colo.FacilityPoP(the) {
		t.Errorf("51702 = %+v, ok=%v", e, ok)
	}

	var linx colo.IXPID
	for _, ix := range cmap.IXPs() {
		if ix.Name == "LINX" {
			linx = ix.ID
		}
	}
	if e, ok := d.Lookup(bgp.MakeCommunity(13030, 4006)); !ok || e.PoP != colo.IXPPoP(linx) {
		t.Errorf("4006 = %+v, ok=%v", e, ok)
	}

	la, _ := world.Resolve("Los Angeles")
	if e, ok := d.Lookup(bgp.MakeCommunity(13030, 50100)); !ok || e.PoP != colo.CityPoP(la.ID) {
		t.Errorf("50100 = %+v, ok=%v", e, ok)
	}

	// Outbound communities must be filtered.
	if _, ok := d.Lookup(bgp.MakeCommunity(13030, 9999)); ok {
		t.Error("active-voice outbound community was not filtered")
	}
	if _, ok := d.Lookup(bgp.MakeCommunity(13030, 666)); ok {
		t.Error("blackhole community was not filtered")
	}
	// Foreign-ASN community quoted in the doc must be rejected.
	if _, ok := d.Lookup(bgp.MakeCommunity(2914, 410)); ok {
		t.Error("foreign community accepted")
	}

	if !d.Covers(13030) || d.Covers(2914) {
		t.Error("coverage wrong")
	}
}

func TestMineRouteServers(t *testing.T) {
	world, cmap := testWorld(t)
	d := NewMiner(world, cmap).Mine(nil)
	if d.NumRouteServers() != 2 {
		t.Fatalf("route servers = %d, want 2", d.NumRouteServers())
	}
	ix, ok := d.LookupRouteServer(bgp.MakeCommunity(8714, 100))
	if !ok {
		t.Fatal("LINX route server community not recognized")
	}
	var linx colo.IXPID
	for _, x := range cmap.IXPs() {
		if x.Name == "LINX" {
			linx = x.ID
		}
	}
	if ix != linx {
		t.Errorf("RS community mapped to IXP %d, want %d", ix, linx)
	}
	if _, ok := d.LookupRouteServer(bgp.MakeCommunity(13030, 100)); ok {
		t.Error("non-RS ASN resolved as route server")
	}
}

func TestMineCityInitialisms(t *testing.T) {
	world, cmap := testWorld(t)
	m := NewMiner(world, cmap)
	d := m.Mine([]Document{{
		ASN: 3356, Source: "web",
		Text: "3356:2001 - routes received at NYC\n3356:2002 - routes received at FRA",
	}})
	nyc, _ := world.Resolve("NYC")
	fra, _ := world.Resolve("FRA")
	if e, ok := d.Lookup(bgp.MakeCommunity(3356, 2001)); !ok || e.PoP != colo.CityPoP(nyc.ID) {
		t.Errorf("NYC initialism not geocoded: %+v ok=%v", e, ok)
	}
	if e, ok := d.Lookup(bgp.MakeCommunity(3356, 2002)); !ok || e.PoP != colo.CityPoP(fra.ID) {
		t.Errorf("IATA code not geocoded: %+v ok=%v", e, ok)
	}
}

func TestMineRangeNotation(t *testing.T) {
	world, cmap := testWorld(t)
	d := NewMiner(world, cmap).Mine([]Document{{
		ASN: 13030, Source: "irr",
		Text: "13030:51000-51003 - routes received at Telehouse East",
	}})
	for low := uint16(51000); low <= 51003; low++ {
		if _, ok := d.Lookup(bgp.MakeCommunity(13030, low)); !ok {
			t.Errorf("range member %d missing", low)
		}
	}
	if d.Len() != 4 {
		t.Errorf("dictionary has %d entries, want 4", d.Len())
	}
}

func TestAnnotate(t *testing.T) {
	world, cmap := testWorld(t)
	m := NewMiner(world, cmap)
	d := m.Mine([]Document{{
		ASN: 13030, Source: "irr",
		Text: "13030:51904 - routes received at Coresite LAX-1",
	}})

	path := bgp.Path{3356, 13030, 20940}
	cs := bgp.Communities{bgp.MakeCommunity(13030, 51904)}
	hops := d.Annotate(path, cs, cmap)
	if len(hops) != 1 {
		t.Fatalf("got %d tagged hops", len(hops))
	}
	h := hops[0]
	if h.Near != 13030 || h.Far != 20940 {
		t.Errorf("hop = near %v far %v, want 13030/20940", h.Near, h.Far)
	}
	if h.PoP.Kind != colo.PoPFacility {
		t.Errorf("PoP = %v", h.PoP)
	}

	// Community whose operator is not on the path is dropped.
	other := bgp.Path{3356, 2914, 20940}
	if got := d.Annotate(other, cs, cmap); len(got) != 0 {
		t.Errorf("annotation leaked across paths: %+v", got)
	}

	// Prepending must not break hop binding.
	prepended := bgp.Path{3356, 13030, 13030, 13030, 20940}
	hops = d.Annotate(prepended, cs, cmap)
	if len(hops) != 1 || hops[0].Far != 20940 {
		t.Errorf("prepended annotation = %+v", hops)
	}

	// Operator at the origin: no far end.
	originPath := bgp.Path{3356, 13030}
	hops = d.Annotate(originPath, cs, cmap)
	if len(hops) != 1 || hops[0].Far != 0 {
		t.Errorf("origin annotation = %+v", hops)
	}
}

func TestAnnotateRouteServer(t *testing.T) {
	world, cmap := testWorld(t)
	d := NewMiner(world, cmap).Mine(nil)

	// 13030 and 20940 are both LINX members; the RS community binds there.
	path := bgp.Path{3356, 13030, 20940}
	cs := bgp.Communities{bgp.MakeCommunity(8714, 4410)}
	hops := d.Annotate(path, cs, cmap)
	if len(hops) != 1 {
		t.Fatalf("got %d hops", len(hops))
	}
	if hops[0].PoP.Kind != colo.PoPIXP {
		t.Errorf("PoP = %v", hops[0].PoP)
	}
	if hops[0].Near != 13030 || hops[0].Far != 20940 {
		t.Errorf("RS hop = %+v", hops[0])
	}

	// No member pair on path: PoP still reported, hop unbound.
	path2 := bgp.Path{3356, 7018}
	hops = d.Annotate(path2, cs, cmap)
	if len(hops) != 1 || hops[0].Near != 0 {
		t.Errorf("unbound RS hop = %+v", hops)
	}
}

func TestHasLocationCommunity(t *testing.T) {
	world, cmap := testWorld(t)
	d := NewMiner(world, cmap).Mine([]Document{{
		ASN: 13030, Source: "irr",
		Text: "13030:51904 - routes received at Coresite LAX-1",
	}})
	if !d.HasLocationCommunity(bgp.Communities{bgp.MakeCommunity(13030, 51904)}) {
		t.Error("location community not detected")
	}
	if !d.HasLocationCommunity(bgp.Communities{bgp.MakeCommunity(8714, 1)}) {
		t.Error("route-server community not detected")
	}
	if d.HasLocationCommunity(bgp.Communities{bgp.MakeCommunity(13030, 1)}) {
		t.Error("unknown community detected")
	}
	if d.HasLocationCommunity(nil) {
		t.Error("empty set detected")
	}
}

func TestComputeStats(t *testing.T) {
	world, cmap := testWorld(t)
	m := NewMiner(world, cmap)
	d := m.Mine([]Document{{
		ASN: 13030, Source: "irr",
		Text: `13030:51904 - routes received at Coresite LAX-1
13030:51702 - routes received at Telehouse East
13030:4006 - routes received from public peer at LINX
13030:50100 - routes learned in Los Angeles`,
	}})
	s := d.ComputeStats(cmap, world)
	if s.Communities != 4 || s.ASNs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Facilities != 2 || s.IXPs != 1 {
		t.Errorf("granularity counts = %+v", s)
	}
	if s.ByGranularity[colo.PoPCity] != 1 || s.ByGranularity[colo.PoPFacility] != 2 || s.ByGranularity[colo.PoPIXP] != 1 {
		t.Errorf("ByGranularity = %+v", s.ByGranularity)
	}
	// LAX-1 and Los Angeles are one city; Telehouse East and LINX are London.
	if s.Cities != 2 {
		t.Errorf("cities = %d, want 2", s.Cities)
	}
	if s.Countries != 2 { // US + GB
		t.Errorf("countries = %d, want 2", s.Countries)
	}
	if s.ByContinent[geo.NorthAmerica] != 2 || s.ByContinent[geo.Europe] != 2 {
		t.Errorf("ByContinent = %+v", s.ByContinent)
	}
	if s.RouteServers != 2 {
		t.Errorf("route servers = %d", s.RouteServers)
	}
}

func TestDiff(t *testing.T) {
	world, cmap := testWorld(t)
	m := NewMiner(world, cmap)
	old := m.Mine([]Document{{
		ASN: 13030, Source: "irr",
		Text: `13030:51904 - routes received at Coresite LAX-1
13030:51702 - routes received at Telehouse East
13030:1111 - routes received in Los Angeles`,
	}})
	newer := m.Mine([]Document{{
		ASN: 13030, Source: "irr",
		Text: `13030:51904 - routes received at Coresite LAX-1
13030:51702 - routes received in London
13030:2222 - routes received at LINX`,
	}})
	s := Diff(old, newer)
	if s.OldTotal != 3 || s.NewTotal != 3 {
		t.Errorf("totals = %+v", s)
	}
	if s.Common != 2 {
		t.Errorf("common = %d, want 2", s.Common)
	}
	if s.ChangedMeaning != 1 { // 51702 moved facility -> city
		t.Errorf("changed = %d, want 1", s.ChangedMeaning)
	}
	if s.Stale != 1 || s.Fresh != 1 {
		t.Errorf("stale/fresh = %d/%d", s.Stale, s.Fresh)
	}
}

func TestDictionaryAddValidation(t *testing.T) {
	d := New()
	d.Add(Entry{Community: bgp.MakeCommunity(1, 2)}) // invalid PoP
	if d.Len() != 0 {
		t.Error("invalid entry accepted")
	}
	d.AddRouteServer(0, 1)
	d.AddRouteServer(1, 0)
	if d.NumRouteServers() != 0 {
		t.Error("invalid route server accepted")
	}
	// ASN defaulting from community high half.
	d.Add(Entry{Community: bgp.MakeCommunity(42, 7), PoP: colo.CityPoP(1)})
	if !d.Covers(42) {
		t.Error("ASN not defaulted from community")
	}
}

func TestCoveredASNsSorted(t *testing.T) {
	d := New()
	for _, asn := range []uint16{300, 100, 200} {
		d.Add(Entry{Community: bgp.MakeCommunity(asn, 1), PoP: colo.CityPoP(1)})
	}
	got := d.CoveredASNs()
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Errorf("CoveredASNs = %v", got)
	}
}

func TestEntriesSorted(t *testing.T) {
	d := New()
	d.Add(Entry{Community: bgp.MakeCommunity(2, 1), PoP: colo.CityPoP(1)})
	d.Add(Entry{Community: bgp.MakeCommunity(1, 9), PoP: colo.CityPoP(1)})
	es := d.Entries()
	if len(es) != 2 || es[0].Community.High != 1 {
		t.Errorf("Entries = %+v", es)
	}
	if es[0].Granularity() != colo.PoPCity {
		t.Errorf("granularity = %v", es[0].Granularity())
	}
}
