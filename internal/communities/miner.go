package communities

import (
	"strings"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
	"kepler/internal/nlp"
)

// Document is one piece of community documentation to mine: the remarks of
// an IRR aut-num object or a scraped operator support page (Section 3.2).
type Document struct {
	ASN    bgp.ASN // the operator the documentation belongs to
	Source string  // "irr" or "web"
	Text   string
}

// Miner compiles dictionaries from documentation. It owns a gazetteer
// primed with facility, IXP and operator names from the colocation map plus
// city names from the world gazetteer — the Banerjee et al. technique the
// paper adopts to make NER work on network-entity names.
type Miner struct {
	world     *geo.World
	cmap      *colo.Map
	gaz       *nlp.Gazetteer
	facByName map[string]colo.FacilityID
	ixpByName map[string]colo.IXPID
}

// NewMiner builds a miner over the given gazetteer and colocation map.
func NewMiner(world *geo.World, cmap *colo.Map) *Miner {
	m := &Miner{
		world:     world,
		cmap:      cmap,
		gaz:       nlp.NewGazetteer(),
		facByName: make(map[string]colo.FacilityID),
		ixpByName: make(map[string]colo.IXPID),
	}
	for _, f := range cmap.Facilities() {
		for _, name := range append([]string{f.Name}, f.AKA...) {
			if name != "" {
				m.gaz.Add(name, nlp.EntityFacility)
				m.facByName[strings.ToLower(name)] = f.ID
			}
		}
		if f.Operator != "" {
			m.gaz.Add(f.Operator, nlp.EntityOperator)
		}
	}
	for _, ix := range cmap.IXPs() {
		for _, name := range append([]string{ix.Name}, ix.AKA...) {
			if name != "" {
				m.gaz.Add(name, nlp.EntityIXP)
				m.ixpByName[strings.ToLower(name)] = ix.ID
			}
		}
	}
	for _, c := range world.Cities() {
		m.gaz.Add(c.Name, nlp.EntityLocation)
	}
	return m
}

// Mine parses all documents and compiles a dictionary. Route-server
// communities are registered from the colocation map's IXP-operated ASNs.
// The pipeline per sentence is the paper's: extract community literals,
// drop sentences in active voice (outbound traffic-engineering actions),
// recognize named entities, keep city/IXP/facility entities, prefer the
// most specific granularity, and validate that the community's top 16 bits
// match the documenting operator.
func (m *Miner) Mine(docs []Document) *Dictionary {
	d := New()
	for _, ix := range m.cmap.IXPs() {
		for _, asn := range ix.ASNs {
			d.AddRouteServer(asn, ix.ID)
		}
	}
	for _, doc := range docs {
		m.mineDocument(d, doc)
	}
	return d
}

func (m *Miner) mineDocument(d *Dictionary, doc Document) {
	for _, sentence := range nlp.Sentences(doc.Text) {
		toks := nlp.Tokenize(sentence)
		matches := nlp.ExtractCommunities(toks)
		if len(matches) == 0 {
			continue
		}
		// Syntactic filter: active-voice sentences define outbound
		// actions ("announce", "block") and are excluded.
		if nlp.DetectVoice(toks) == nlp.VoiceActive {
			continue
		}
		pop, label := m.resolvePoP(toks)
		if !pop.IsValid() {
			continue
		}
		for _, cm := range matches {
			if cm.High > 0xffff || cm.Low > 0xffff {
				continue
			}
			comm := bgp.MakeCommunity(uint16(cm.High), uint16(cm.Low))
			// Convention check: the top 16 bits must be the operator
			// documenting the community; anything else is likely an
			// example snippet quoting another network.
			if comm.ASN() != doc.ASN {
				continue
			}
			d.Add(Entry{
				Community: comm,
				ASN:       doc.ASN,
				PoP:       pop,
				Label:     label,
				Source:    doc.Source,
			})
		}
	}
}

// resolvePoP finds the most specific location entity in the sentence:
// facility beats IXP beats city. City identifiers that the gazetteer does
// not know as entities still resolve through the geocoder (initialisms,
// IATA codes), mirroring the paper's Google-Maps step.
func (m *Miner) resolvePoP(toks []nlp.Token) (colo.PoP, string) {
	var (
		fac                           colo.FacilityID
		ixp                           colo.IXPID
		city                          geo.CityID
		facLabel, ixpLabel, cityLabel string
	)
	for _, e := range m.gaz.Find(toks) {
		switch e.Type {
		case nlp.EntityFacility:
			if fac == 0 {
				fac = m.facByName[strings.ToLower(e.Canon)]
				facLabel = e.Canon
			}
		case nlp.EntityIXP:
			if ixp == 0 {
				ixp = m.ixpByName[strings.ToLower(e.Canon)]
				ixpLabel = e.Canon
			}
		case nlp.EntityLocation:
			if city == geo.NoCity {
				if c, ok := m.world.Resolve(e.Canon); ok {
					city = c.ID
					cityLabel = c.Name
				}
			}
		}
	}
	if city == geo.NoCity {
		// Fall back to geocoding capitalized spans: "JFK", "NYC", "FRA".
		for _, span := range nlp.CapitalizedSpans(toks) {
			var words []string
			for _, t := range span {
				words = append(words, t.Text)
			}
			if c, ok := m.world.Resolve(strings.Join(words, " ")); ok {
				city = c.ID
				cityLabel = c.Name
				break
			}
		}
	}
	switch {
	case fac != 0:
		return colo.FacilityPoP(fac), facLabel
	case ixp != 0:
		return colo.IXPPoP(ixp), ixpLabel
	case city != geo.NoCity:
		return colo.CityPoP(city), cityLabel
	default:
		return colo.PoP{}, ""
	}
}
