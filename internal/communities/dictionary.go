// Package communities implements Kepler's BGP community dictionary
// (Section 3.2 of the paper): the mapping from location-encoding community
// values to the physical points of presence they tag, the web-mining
// pipeline that compiles the dictionary from operators' natural-language
// documentation, the route-server redistribution communities that reveal
// IXP crossings, the annotation step that binds each community on a route
// to the AS-path hop it describes (Section 4.1), and the attrition analysis
// that compares dictionary generations (the paper's comparison against the
// 2008 Donnet–Bonaventure dictionary).
package communities

import (
	"sort"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
)

// Entry is one dictionary record: a community value and the PoP it tags.
type Entry struct {
	Community bgp.Community
	ASN       bgp.ASN  // operator that attaches the community (top 16 bits)
	PoP       colo.PoP // tagged location: city, facility or IXP
	Label     string   // human-readable location label (clustered)
	Source    string   // where the interpretation came from ("irr", "web", ...)
}

// Granularity returns the PoP kind the entry encodes.
func (e Entry) Granularity() colo.PoPKind { return e.PoP.Kind }

// Dictionary is a compiled community dictionary. The zero value is empty
// and usable.
type Dictionary struct {
	entries      map[bgp.Community]Entry
	routeServers map[bgp.ASN]colo.IXPID // RS ASN -> IXP
	asns         map[bgp.ASN]bool       // operators with >=1 location entry
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{
		entries:      make(map[bgp.Community]Entry),
		routeServers: make(map[bgp.ASN]colo.IXPID),
		asns:         make(map[bgp.ASN]bool),
	}
}

// Add inserts or replaces an entry. Entries with invalid PoPs are ignored.
func (d *Dictionary) Add(e Entry) {
	if !e.PoP.IsValid() {
		return
	}
	if e.ASN == 0 {
		e.ASN = e.Community.ASN()
	}
	d.entries[e.Community] = e
	d.asns[e.ASN] = true
}

// AddRouteServer registers an IXP route-server ASN: any community whose top
// 16 bits equal this ASN marks the route as having traversed the IXP
// (Section 3.2, "IXP Path Redistribution Communities").
func (d *Dictionary) AddRouteServer(asn bgp.ASN, ixp colo.IXPID) {
	if asn == 0 || ixp == 0 {
		return
	}
	d.routeServers[asn] = ixp
}

// Lookup resolves a community to its dictionary entry.
func (d *Dictionary) Lookup(c bgp.Community) (Entry, bool) {
	e, ok := d.entries[c]
	return e, ok
}

// LookupRouteServer resolves a community set by an IXP route server to the
// IXP it implies the route traversed.
func (d *Dictionary) LookupRouteServer(c bgp.Community) (colo.IXPID, bool) {
	ix, ok := d.routeServers[c.ASN()]
	return ix, ok
}

// Covers reports whether the operator has at least one location entry; these
// are the ASes whose ingress points Kepler can localize.
func (d *Dictionary) Covers(asn bgp.ASN) bool { return d.asns[asn] }

// CoveredASNs returns the operators with location entries, sorted.
func (d *Dictionary) CoveredASNs() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(d.asns))
	for a := range d.asns {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of location entries.
func (d *Dictionary) Len() int { return len(d.entries) }

// NumRouteServers returns the number of registered route servers.
func (d *Dictionary) NumRouteServers() int { return len(d.routeServers) }

// Entries returns all entries sorted by community value.
func (d *Dictionary) Entries() []Entry {
	out := make([]Entry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Community.Uint32() < out[j].Community.Uint32() })
	return out
}

// Stats summarizes a dictionary the way Section 3.2 reports it.
type Stats struct {
	Communities  int // location entries
	ASNs         int // operators using them
	RouteServers int
	Cities       int
	Countries    int
	IXPs         int
	Facilities   int
	// ByContinent counts entries tagging each continent (Figure 5's
	// geographic spread).
	ByContinent map[geo.Continent]int
	// ByGranularity counts entries per PoP kind.
	ByGranularity map[colo.PoPKind]int
}

// ComputeStats summarizes the dictionary against the colocation map and
// gazetteer (needed to resolve facility/IXP cities to continents).
func (d *Dictionary) ComputeStats(cmap *colo.Map, world *geo.World) Stats {
	s := Stats{
		Communities:   len(d.entries),
		ASNs:          len(d.asns),
		RouteServers:  len(d.routeServers),
		ByContinent:   make(map[geo.Continent]int),
		ByGranularity: make(map[colo.PoPKind]int),
	}
	cities := make(map[geo.CityID]bool)
	countries := make(map[string]bool)
	ixps := make(map[colo.IXPID]bool)
	facs := make(map[colo.FacilityID]bool)
	for _, e := range d.entries {
		s.ByGranularity[e.PoP.Kind]++
		switch e.PoP.Kind {
		case colo.PoPCity:
			cities[geo.CityID(e.PoP.ID)] = true
		case colo.PoPIXP:
			ixps[colo.IXPID(e.PoP.ID)] = true
		case colo.PoPFacility:
			facs[colo.FacilityID(e.PoP.ID)] = true
		}
		cityID := cmap.CityOf(e.PoP)
		if cityID == geo.NoCity && e.PoP.Kind == colo.PoPCity {
			cityID = geo.CityID(e.PoP.ID)
		}
		if city, ok := world.City(cityID); ok {
			cities[city.ID] = true
			countries[city.Country] = true
			s.ByContinent[city.Continent]++
		}
	}
	s.Cities = len(cities)
	s.Countries = len(countries)
	s.IXPs = len(ixps)
	s.Facilities = len(facs)
	return s
}

// TaggedHop binds one location community on a route to the AS-path hop it
// annotates: Near received the route from Far at PoP. For route-server
// communities Near/Far are the IXP members around the (transparent) route
// server when identifiable.
type TaggedHop struct {
	Near      bgp.ASN
	Far       bgp.ASN
	PoP       colo.PoP
	Community bgp.Community
}

// Annotate maps each community on a route to the AS-path hop it refers to
// (Section 4.1): a location community with top bits X binds to the hop where
// X appears in the path, with the far end being X's neighbor toward the
// origin; a route-server community binds to the first member-member hop pair
// of that IXP (scanning from the origin), per Giotsas–Zhou. Communities
// whose operator is absent from the path are dropped — they were propagated
// beyond their origin and cannot be trusted to describe this path.
func (d *Dictionary) Annotate(path bgp.Path, cs bgp.Communities, cmap *colo.Map) []TaggedHop {
	return d.AnnotateAppend(nil, path, cs, cmap)
}

// AnnotateAppend is Annotate appending into dst, reusing its capacity —
// the allocation-free variant for hot ingest loops that annotate millions
// of routes with a caller-owned scratch buffer.
func (d *Dictionary) AnnotateAppend(dst []TaggedHop, path bgp.Path, cs bgp.Communities, cmap *colo.Map) []TaggedHop {
	if len(path) == 0 || len(cs) == 0 {
		return dst
	}
	deduped := path.Dedup()
	out := dst
	for _, c := range cs {
		if e, ok := d.entries[c]; ok {
			idx := deduped.Index(e.ASN)
			if idx < 0 {
				continue
			}
			th := TaggedHop{Near: e.ASN, PoP: e.PoP, Community: c}
			if idx+1 < len(deduped) {
				th.Far = deduped[idx+1]
			}
			out = append(out, th)
			continue
		}
		if ixp, ok := d.routeServers[c.ASN()]; ok {
			th := TaggedHop{PoP: colo.IXPPoP(ixp), Community: c}
			if cmap != nil {
				// Find the hop pair where both sides are IXP members,
				// scanning from the origin end: the redistribution happened
				// nearest the origin.
				for i := len(deduped) - 1; i > 0; i-- {
					if cmap.AtIXP(deduped[i], ixp) && cmap.AtIXP(deduped[i-1], ixp) {
						th.Near, th.Far = deduped[i-1], deduped[i]
						break
					}
				}
			}
			out = append(out, th)
		}
	}
	return out
}

// HasLocationCommunity reports whether any community in the set is a
// location or route-server community known to the dictionary — the
// numerator of Figure 7c's coverage fraction.
func (d *Dictionary) HasLocationCommunity(cs bgp.Communities) bool {
	for _, c := range cs {
		if _, ok := d.entries[c]; ok {
			return true
		}
		if _, ok := d.routeServers[c.ASN()]; ok {
			return true
		}
	}
	return false
}

// DiffStats compares two dictionary generations, reproducing the paper's
// attrition analysis against the 2008 dictionary.
type DiffStats struct {
	OldTotal       int
	NewTotal       int
	Common         int // community values present in both
	ChangedMeaning int // common values mapping to a different PoP
	Stale          int // old values absent from the new dictionary
	Fresh          int // new values absent from the old dictionary
}

// Diff computes attrition statistics from old to new.
func Diff(old, new_ *Dictionary) DiffStats {
	s := DiffStats{OldTotal: old.Len(), NewTotal: new_.Len()}
	for c, oe := range old.entries {
		ne, ok := new_.entries[c]
		if !ok {
			s.Stale++
			continue
		}
		s.Common++
		if ne.PoP != oe.PoP {
			s.ChangedMeaning++
		}
	}
	s.Fresh = s.NewTotal - s.Common
	return s
}
