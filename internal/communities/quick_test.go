package communities

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
)

// TestQuickAnnotateInvariants: for arbitrary paths and community sets,
// Annotate never binds a location community to an AS absent from the path,
// and every returned hop carries a valid PoP.
func TestQuickAnnotateInvariants(t *testing.T) {
	world, cmap := testWorld(t)
	dict := NewMiner(world, cmap).Mine([]Document{{
		ASN: 13030, Source: "irr",
		Text: `13030:51904 - routes received at Coresite LAX-1
13030:51702 - routes received at Telehouse East
13030:4006 - routes received from public peer at LINX`,
	}})

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random path over a small ASN universe that sometimes contains
		// the tagging AS.
		universe := []bgp.ASN{3356, 13030, 20940, 2914, 7018, 1136}
		path := make(bgp.Path, rng.Intn(5)+1)
		for i := range path {
			path[i] = universe[rng.Intn(len(universe))]
		}
		var comms bgp.Communities
		for i := 0; i < rng.Intn(5); i++ {
			comms = append(comms, bgp.MakeCommunity(
				uint16(universe[rng.Intn(len(universe))]),
				uint16([]int{51904, 51702, 4006, 1, 999}[rng.Intn(5)]),
			))
		}
		for _, hop := range dict.Annotate(path, comms, cmap) {
			if !hop.PoP.IsValid() {
				return false
			}
			if hop.Near != 0 && !path.Contains(hop.Near) {
				return false
			}
			if hop.Far != 0 && !path.Contains(hop.Far) {
				return false
			}
			// A bound near/far pair must be adjacent on the deduplicated path.
			if hop.Near != 0 && hop.Far != 0 {
				d := path.Dedup()
				i := d.Index(hop.Near)
				if i < 0 || i+1 >= len(d) || d[i+1] != hop.Far {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDictionaryLookupConsistency: every entry reported by Entries()
// is reachable through Lookup and covered by Covers.
func TestQuickDictionaryLookupConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New()
		n := rng.Intn(50) + 1
		for i := 0; i < n; i++ {
			d.Add(Entry{
				Community: bgp.MakeCommunity(uint16(rng.Intn(1000)+1), uint16(rng.Intn(60000))),
				PoP:       colo.CityPoP(geo.CityID(rng.Intn(100) + 1)),
			})
		}
		for _, e := range d.Entries() {
			got, ok := d.Lookup(e.Community)
			if !ok || got.PoP != e.PoP {
				return false
			}
			if !d.Covers(e.ASN) {
				return false
			}
		}
		return d.Len() <= n // duplicates may collapse, never grow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
