// Package core implements Kepler, the peering-infrastructure outage
// detection system of the paper (Section 4). The detector consumes a
// time-ordered stream of BGP records, maps each route's location-encoding
// communities to the physical PoPs it traverses (input module), maintains a
// stable-path baseline and bins PoP-level divergence into 60-second
// intervals with a per-AS failure threshold (monitoring module), classifies
// concurrent signals into link-, AS-, operator- and PoP-level incidents and
// disambiguates the outage epicenter against the colocation map (signal
// investigation), optionally confirms inferences against the data plane,
// and tracks outage durations with oscillation merging.
package core

import (
	"net/netip"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
)

// Config holds Kepler's tuning parameters. DefaultConfig returns the
// paper's settings (Section 5.1).
type Config struct {
	// Tfail is the per-AS fraction of diverted stable paths that raises an
	// outage signal. The paper selects 10% as "relatively conservative"
	// while still catching medium-scale partial outages.
	Tfail float64
	// BinInterval groups updates for correlation: 60 s, twice the default
	// MRAI.
	BinInterval time.Duration
	// StableWindow is how long a path must keep tagging a PoP before it
	// joins the baseline (ds = 2 days).
	StableWindow time.Duration
	// ColocationMargin is the fraction of colocated-far-end paths that
	// must be affected to pin the epicenter (95%, allowing 5% colocation
	// map error).
	ColocationMargin float64
	// RestoreFraction of diverted paths returning to the baseline PoP
	// closes the outage (50%).
	RestoreFraction float64
	// OscillationGap merges two outages of one PoP separated by less than
	// this into one incident (12 h).
	OscillationGap time.Duration
	// MinInvestigationASes is the number of distinct affected ASes above
	// which a signal stops being link-level and triggers investigation
	// ("more than three different ASes").
	MinInvestigationASes int
	// MinDisjointEnds is the minimum number of non-sibling near-end and
	// far-end ASes for a PoP-level classification (3 each).
	MinDisjointEnds int
	// ReportUnresolved opens outages at the signal PoP even when
	// disambiguation cannot converge and no data plane is available to
	// probe candidates. Off by default: the paper's pipeline never
	// reports a location it could not corroborate, but operators running
	// without measurement infrastructure may prefer recall over precision.
	ReportUnresolved bool
	// ProbeTTL bounds how long a signal group parked behind an asynchronous
	// probe campaign (SetProber) waits for its verdict before expiring
	// unreported. Zero selects 10 minutes. Irrelevant to the synchronous
	// DataPlane path.
	ProbeTTL time.Duration
	// InvestWorkers is the number of goroutines the bin-close signal
	// investigation fans per-PoP groups across. Groups are classified
	// independently (they only interact in the serial collateral-folding
	// and city-abstraction steps that follow), so a multi-core host can
	// parallelize the investigation without changing output: results merge
	// in deterministic group order and are byte-for-byte identical to the
	// sequential path. Values <= 1 classify inline.
	InvestWorkers int
	// DisablePerASGrouping reverts to thresholding the aggregate path
	// fraction per PoP instead of per near-end AS. The paper introduces
	// per-AS grouping because aggregate fractions are "biased by ASes that
	// account for a disproportionately large number of paths"
	// (Section 4.2); this knob exists for the ablation benchmark that
	// demonstrates the bias.
	DisablePerASGrouping bool
	// FeedSilence, when positive, arms the feed-health watchdog: a
	// collector or peer session whose feed has been silent (no records of
	// any kind) for at least this much stream time at a bin close is
	// declared degraded, firing Hooks.FeedDegraded, and recovers on its
	// next record (Hooks.FeedRecovered). Liveness is judged on record
	// timestamps only — never the wall clock — so the transition sequence
	// is part of the deterministic output: byte-for-byte identical across
	// shard counts, replay speeds and restarts. Zero disables the
	// watchdog. Feed events never influence detection results.
	FeedSilence time.Duration
	// Tracing records a provenance trace per resolved outage — the evidence
	// chain (diverted paths, baseline counts, disambiguation eliminations,
	// collateral folds, probe verdicts) behind the detection — delivered to
	// Hooks.TraceRecorded right after OutageResolved. Traces are derived
	// output: detection results are byte-for-byte identical with tracing on
	// or off, and recording costs nothing when disabled. Off by default.
	Tracing bool
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Tfail:                0.10,
		BinInterval:          60 * time.Second,
		StableWindow:         48 * time.Hour,
		ColocationMargin:     0.95,
		RestoreFraction:      0.50,
		OscillationGap:       12 * time.Hour,
		MinInvestigationASes: 3,
		MinDisjointEnds:      3,
		ProbeTTL:             defaultProbeTTL,
	}
}

// IncidentKind is the granularity of a classified routing incident
// (Section 4.3).
type IncidentKind uint8

// Incident kinds.
const (
	IncidentLink IncidentKind = iota
	IncidentAS
	IncidentOperator
	IncidentPoP
)

// String names the kind.
func (k IncidentKind) String() string {
	switch k {
	case IncidentLink:
		return "link"
	case IncidentAS:
		return "as"
	case IncidentOperator:
		return "operator"
	case IncidentPoP:
		return "pop"
	default:
		return "unknown"
	}
}

// Incident is one classified outage signal group.
type Incident struct {
	Time time.Time
	Kind IncidentKind
	// PoP is the signalled PoP (for IncidentPoP: the disambiguated
	// epicenter).
	PoP colo.PoP
	// SignalPoP is the PoP the communities originally indicated, before
	// disambiguation and resolution refinement.
	SignalPoP colo.PoP
	// CommonAS is set for AS-level incidents.
	CommonAS bgp.ASN
	// AffectedASes are the distinct near+far ASes involved.
	AffectedASes []bgp.ASN
	// Links is the number of affected AS links.
	Links int
	// Paths is the number of diverted stable paths.
	Paths int
}

// Outage is one detected PoP-level outage with its tracked duration.
type Outage struct {
	PoP       colo.PoP
	SignalPoP colo.PoP
	Start     time.Time
	End       time.Time
	// Confirmed is set when data-plane measurements corroborated the
	// control-plane inference.
	Confirmed bool
	// DataPlaneChecked reports whether a data plane was available at all.
	DataPlaneChecked bool
	// AffectedASes as observed across the outage's signals.
	AffectedASes []bgp.ASN
	// DivertedPaths is the peak number of stable paths diverted.
	DivertedPaths int
	// Merged counts oscillation segments folded into this incident.
	Merged int
}

// Duration returns the outage duration (the sum of oscillation segments is
// approximated by End-Start once merged).
func (o *Outage) Duration() time.Duration { return o.End.Sub(o.Start) }

// DataPlane abstracts the targeted-measurement backend (Section 4.4):
// given a suspected PoP outage, it reports whether the data plane confirms
// that baseline paths stopped crossing the PoP.
type DataPlane interface {
	// Confirm returns (confirmed, hasData): hasData=false means no
	// measurements were possible and the control-plane inference stands
	// unvalidated.
	Confirm(pop colo.PoP, at time.Time) (confirmed, hasData bool)
}

// PathKey identifies one monitored path: a vantage AS's route to a prefix.
// Kepler deduplicates the same vantage across collectors.
type PathKey struct {
	Peer   bgp.ASN
	Prefix netip.Prefix
}
