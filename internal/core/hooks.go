package core

import (
	"sort"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
)

// Hooks receives detection lifecycle callbacks from the pipeline. All
// callbacks run synchronously on the ingestion goroutine at bin boundaries
// (the only points where outage state changes), so implementations must not
// block: a hook that stalls stalls bin closes and therefore record
// ingestion. Nil fields are skipped. Hooks must be installed via SetHooks
// before the first Process call.
type Hooks struct {
	// OutageOpened fires when a PoP gains an open outage — including an
	// oscillation reopen, which carries Merged > 0.
	OutageOpened func(OutageStatus)
	// OutageUpdated fires when a later bin's signals extend an already-open
	// outage.
	OutageUpdated func(OutageStatus)
	// OutageResolved fires exactly when a completed Outage becomes
	// drainable from Process/Flush: after restoration plus the oscillation
	// window, or at stream flush. The set of resolved outages equals the
	// batch output for the same stream.
	OutageResolved func(Outage)
	// IncidentClassified fires for every classified signal group
	// (link/AS/operator/PoP), in the order Incidents() records them.
	IncidentClassified func(Incident)
	// BinClosed fires at the end of every non-idle bin close, after all
	// outage and incident callbacks of that bin. The engine's state
	// accessors (OpenOutageStatuses, Incidents, Stats) are safe to call
	// from inside the callback; servers use it to refresh read snapshots.
	BinClosed func(end time.Time)
	// ProbeRequested fires when a signal group is parked pending an
	// asynchronous probe campaign (SetProber mode only).
	ProbeRequested func(PendingConfirmation)
	// ProbeConfirmed fires when a campaign verdict resolves a pending
	// confirmation — promoted to a located outage (Located), suppressed as
	// a data-plane-contradicted false positive, or resolved unlocated. It
	// fires before the OutageOpened/OutageUpdated callback of a promotion.
	ProbeConfirmed func(ProbeOutcome)
	// ProbeExpired fires when a pending confirmation outlives its TTL
	// without a verdict and is dropped.
	ProbeExpired func(ProbeOutcome)
	// FeedDegraded fires — only with Config.FeedSilence set — when a
	// collector or peer session crosses the silence threshold at a bin
	// close, before that bin's BinClosed callback. Transitions are ordered
	// by (scope, collector, peer), a pure function of the record stream.
	FeedDegraded func(bgpstream.FeedTransition)
	// FeedRecovered fires when a previously degraded feed is seen again,
	// under the same ordering and determinism contract as FeedDegraded.
	FeedRecovered func(bgpstream.FeedTransition)
	// TraceRecorded fires — only with Config.Tracing enabled — immediately
	// after the OutageResolved callback of the same outage, carrying the
	// evidence chain behind it: trace i always describes resolved outage i.
	// An outage whose in-flight evidence was lost (e.g. a checkpoint
	// restore mid-outage) still yields a trace, with the chapters it
	// accumulated since.
	TraceRecorded func(OutageTrace)
}

// OutageStatus is a point-in-time snapshot of one open (ongoing) outage,
// safe to retain: all slices are copies.
type OutageStatus struct {
	// PoP is the outage epicenter.
	PoP colo.PoP
	// SignalPoPs are the PoPs whose signals were attributed to this
	// epicenter, sorted by (kind, id).
	SignalPoPs []colo.PoP
	// Start is when the outage began (bin preceding the first signal).
	Start time.Time
	// LastSignal is the most recent bin that raised a signal for it.
	LastSignal time.Time
	// Confirmed reports data-plane corroboration so far.
	Confirmed bool
	// AffectedASes observed across the outage's signals, sorted.
	AffectedASes []bgp.ASN
	// WaitingPaths is the number of diverted paths not yet returned.
	WaitingPaths int
	// ReturnedPaths is the number of diverted paths back on baseline.
	ReturnedPaths int
	// Merged counts oscillation segments folded into this incident.
	Merged int
}

// status snapshots the open outage. Callers hold the bin barrier (or run
// single-threaded), so the maps are stable.
func (o *openOutage) status() OutageStatus {
	sigs := make([]colo.PoP, 0, len(o.signalPops))
	for pop := range o.signalPops {
		sigs = append(sigs, pop)
	}
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].Kind != sigs[j].Kind {
			return sigs[i].Kind < sigs[j].Kind
		}
		return sigs[i].ID < sigs[j].ID
	})
	affected := make([]bgp.ASN, 0, len(o.affected))
	for a := range o.affected {
		affected = append(affected, a)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	return OutageStatus{
		PoP:           o.epicenter,
		SignalPoPs:    sigs,
		Start:         o.start,
		LastSignal:    o.lastSignal,
		Confirmed:     o.confirmed,
		AffectedASes:  affected,
		WaitingPaths:  len(o.waiting),
		ReturnedPaths: len(o.returned),
		Merged:        o.merged,
	}
}

// openStatuses snapshots every open outage, sorted by epicenter.
func (t *outageTracker) openStatuses() []OutageStatus {
	out := make([]OutageStatus, 0, len(t.opened))
	for _, o := range t.opened {
		out = append(out, o.status())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PoP.Kind != out[j].PoP.Kind {
			return out[i].PoP.Kind < out[j].PoP.Kind
		}
		return out[i].PoP.ID < out[j].PoP.ID
	})
	return out
}

// emit moves a completed outage into the drainable set and fires the
// resolution hook: the single point through which every finished Outage
// passes, so hook subscribers observe exactly the batch output. With
// tracing enabled the outage's accumulated evidence follows right behind
// it — every resolution is paired with exactly one trace (a stub when the
// evidence was lost across a checkpoint restore), keeping the resolved
// index aligned with the trace index.
func (inv *investigator) emit(o Outage, tr *OutageTrace) {
	inv.completed = append(inv.completed, o)
	if inv.hooks.OutageResolved != nil {
		inv.hooks.OutageResolved(o)
	}
	if inv.cfg.Tracing && inv.hooks.TraceRecorded != nil {
		if tr == nil {
			tr = &OutageTrace{Version: TraceVersion}
		}
		tr.PoP = o.PoP
		tr.Start = o.Start
		tr.End = o.End
		tr.Merged = o.Merged
		inv.hooks.TraceRecorded(*tr)
	}
}
