package core

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
)

// CheckpointVersion is the encoding version DecodeCheckpoint accepts. Any
// change to the checkpoint schema or to the semantics of a serialized field
// must bump it: restoring a checkpoint written by different detection code
// would silently desynchronize the replay gate, so a version mismatch is a
// hard decode error and recovery falls back to an older checkpoint or a
// full re-ingest.
//
// Version history: 2 added the feed-health watchdog state (Feed).
const CheckpointVersion = 2

// Checkpoint is the complete serializable detection state of an Engine (or
// Detector) at a bin barrier: the per-path monitoring tables, the stable
// baseline, collector session state, the investigator's incident log and
// outage tracker, and any probe campaigns parked as pending confirmations.
//
// The encoding is deterministic — every map is flattened into a sorted
// slice — so for one record stream the checkpoint bytes are identical
// regardless of shard count, and a checkpoint can be restored into an
// engine with any shard count. Restoring a checkpoint taken after record N
// and re-ingesting records N+1.. reproduces byte-for-byte the state and
// lifecycle-hook sequence of an uninterrupted run.
type Checkpoint struct {
	Version int `json:"version"`
	// BinStart is the bin clock position: the start of the bin the next
	// record falls into (the closing bin's end when captured at a barrier).
	BinStart time.Time `json:"bin_start"`
	// Records counts the source records whose effects this checkpoint
	// includes; recovery resumes ingestion at record offset Records.
	Records uint64 `json:"records"`
	// OpSeq is the fan-out's global route-op sequence counter.
	OpSeq uint64 `json:"op_seq"`
	// ProbeSeq is the investigator's campaign-id counter.
	ProbeSeq uint64 `json:"probe_seq"`

	Sessions bgpstream.SessionCheckpoint `json:"sessions"`
	// Feed is the feed-health watchdog state (Config.FeedSilence); empty
	// when the watchdog is disabled. Like Sessions it is global, not
	// per-shard, so the encoding stays shard-count independent.
	Feed bgpstream.FeedCheckpoint `json:"feed"`

	Paths  []PathCheckpoint   `json:"paths,omitempty"`
	Stable []StableCheckpoint `json:"stable,omitempty"`

	Incidents []Incident `json:"incidents,omitempty"`
	// Completed are outages emitted but not yet drained by the caller.
	Completed []Outage                 `json:"completed,omitempty"`
	Open      []OpenOutageCheckpoint   `json:"open,omitempty"`
	Cooling   []Outage                 `json:"cooling,omitempty"`
	Pending   []PendingProbeCheckpoint `json:"pending,omitempty"`
}

// PathKeyCheckpoint is the serialized form of one monitored path key.
type PathKeyCheckpoint struct {
	Peer   bgp.ASN      `json:"peer"`
	Prefix netip.Prefix `json:"prefix"`
}

func ckptKey(k PathKey) PathKeyCheckpoint   { return PathKeyCheckpoint{Peer: k.Peer, Prefix: k.Prefix} }
func (k PathKeyCheckpoint) unpack() PathKey { return PathKey{Peer: k.Peer, Prefix: k.Prefix} }

func keyLess(a, b PathKey) bool {
	if a.Peer != b.Peer {
		return a.Peer < b.Peer
	}
	if c := a.Prefix.Addr().Compare(b.Prefix.Addr()); c != 0 {
		return c < 0
	}
	return a.Prefix.Bits() < b.Prefix.Bits()
}

func popLess(a, b colo.PoP) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.ID < b.ID
}

func sortKeySet(set map[PathKey]bool) []PathKeyCheckpoint {
	keys := make([]PathKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	out := make([]PathKeyCheckpoint, len(keys))
	for i, k := range keys {
		out[i] = ckptKey(k)
	}
	return out
}

// TagCheckpoint is one currently tagged PoP of a path with its hop ends and
// the instant the tag became continuous (the stability clock).
type TagCheckpoint struct {
	PoP   colo.PoP  `json:"pop"`
	Near  bgp.ASN   `json:"near"`
	Far   bgp.ASN   `json:"far"`
	Since time.Time `json:"since"`
}

// PathCheckpoint is the full monitoring state of one path.
type PathCheckpoint struct {
	Key  PathKeyCheckpoint `json:"key"`
	Path bgp.Path          `json:"path,omitempty"`
	Tags []TagCheckpoint   `json:"tags,omitempty"`
}

// StableCheckpoint is one stable-baseline membership: key is stable at PoP
// under the near-end AS grouping, with the recorded hop ends.
type StableCheckpoint struct {
	PoP  colo.PoP          `json:"pop"`
	Near bgp.ASN           `json:"near"`
	Far  bgp.ASN           `json:"far"`
	Key  PathKeyCheckpoint `json:"key"`
}

// OpenOutageCheckpoint is the tracker state of one ongoing outage.
type OpenOutageCheckpoint struct {
	Epicenter  colo.PoP            `json:"epicenter"`
	SignalPoPs []colo.PoP          `json:"signal_pops"`
	Start      time.Time           `json:"start"`
	LastSignal time.Time           `json:"last_signal"`
	Waiting    []PathKeyCheckpoint `json:"waiting,omitempty"`
	Returned   []PathKeyCheckpoint `json:"returned,omitempty"`
	LastReturn time.Time           `json:"last_return,omitempty"`
	Affected   []bgp.ASN           `json:"affected,omitempty"`
	Confirmed  bool                `json:"confirmed,omitempty"`
	DPChecked  bool                `json:"dp_checked,omitempty"`
	Merged     int                 `json:"merged,omitempty"`
}

// DivertRecCheckpoint is the detached divert record of a parked group:
// path key and link ends, exactly what promotion rebuilds the tracker-facing
// group from.
type DivertRecCheckpoint struct {
	Key  PathKeyCheckpoint `json:"key"`
	Near bgp.ASN           `json:"near"`
	Far  bgp.ASN           `json:"far"`
}

// PendingProbeCheckpoint is one parked signal group awaiting its campaign
// verdict. Restore re-parks it and re-submits the campaign to the prober.
type PendingProbeCheckpoint struct {
	ID         uint64                `json:"id"`
	At         time.Time             `json:"at"`
	Deadline   time.Time             `json:"deadline"`
	Epicenter  colo.PoP              `json:"epicenter"`
	Candidates []colo.PoP            `json:"candidates,omitempty"`
	SignalPoP  colo.PoP              `json:"signal_pop"`
	Recs       []DivertRecCheckpoint `json:"recs,omitempty"`
	Affected   []bgp.ASN             `json:"affected,omitempty"`
	Paths      int                   `json:"paths"`
	Waiting    []PathKeyCheckpoint   `json:"waiting,omitempty"`
	Returned   []PathKeyCheckpoint   `json:"returned,omitempty"`
	LastReturn time.Time             `json:"last_return,omitempty"`
}

// Encode renders the checkpoint as its canonical byte encoding. Because
// every collection is sorted at capture, encoding the same detection state
// always yields the same bytes.
func (c *Checkpoint) Encode() ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	return b, nil
}

// DecodeCheckpoint parses an encoded checkpoint, rejecting unknown
// versions: a checkpoint written by a different encoding must never be
// half-restored.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, this build reads %d", c.Version, CheckpointVersion)
	}
	return &c, nil
}

// captureCheckpoint assembles a checkpoint from quiesced pipeline state.
// The caller guarantees exclusive access to every shard (bin barrier, or a
// pipeline with no ops since its last barrier).
func captureCheckpoint(binStart time.Time, records uint64, fan *bgpstream.Fanout, shards []*pathShard, inv *investigator) *Checkpoint {
	c := &Checkpoint{
		Version:  CheckpointVersion,
		BinStart: binStart,
		Records:  records,
		OpSeq:    fan.Seq(),
		ProbeSeq: inv.probeSeq,
		Sessions: fan.Tracker().Checkpoint(),
	}
	if inv.feed != nil {
		c.Feed = inv.feed.Checkpoint()
	}

	// Per-path monitoring state, merged across shards and globally sorted:
	// the encoding is shard-count independent.
	for _, s := range shards {
		for key, st := range s.paths {
			p := PathCheckpoint{Key: ckptKey(key), Path: st.path}
			for _, t := range st.tags {
				p.Tags = append(p.Tags, TagCheckpoint{PoP: t.pop, Near: t.ends.near, Far: t.ends.far, Since: t.since})
			}
			sort.Slice(p.Tags, func(i, j int) bool { return popLess(p.Tags[i].PoP, p.Tags[j].PoP) })
			c.Paths = append(c.Paths, p)
		}
		for pop, byNear := range s.stable {
			for near, set := range byNear {
				for key, ends := range set {
					c.Stable = append(c.Stable, StableCheckpoint{PoP: pop, Near: near, Far: ends.far, Key: ckptKey(key)})
				}
			}
		}
	}
	sort.Slice(c.Paths, func(i, j int) bool { return keyLess(c.Paths[i].Key.unpack(), c.Paths[j].Key.unpack()) })
	sort.Slice(c.Stable, func(i, j int) bool {
		a, b := &c.Stable[i], &c.Stable[j]
		if a.PoP != b.PoP {
			return popLess(a.PoP, b.PoP)
		}
		if a.Near != b.Near {
			return a.Near < b.Near
		}
		return keyLess(a.Key.unpack(), b.Key.unpack())
	})

	// Investigator state: the incident log, undrained completions, the
	// outage tracker, and parked probe campaigns.
	c.Incidents = append([]Incident(nil), inv.incidents...)
	c.Completed = append([]Outage(nil), inv.completed...)
	c.Cooling = append([]Outage(nil), inv.tracker.cooling...)
	epis := make([]colo.PoP, 0, len(inv.tracker.opened))
	for pop := range inv.tracker.opened {
		epis = append(epis, pop)
	}
	sort.Slice(epis, func(i, j int) bool { return popLess(epis[i], epis[j]) })
	for _, pop := range epis {
		o := inv.tracker.opened[pop]
		sigs := make([]colo.PoP, 0, len(o.signalPops))
		for p := range o.signalPops {
			sigs = append(sigs, p)
		}
		sort.Slice(sigs, func(i, j int) bool { return popLess(sigs[i], sigs[j]) })
		affected := make([]bgp.ASN, 0, len(o.affected))
		for a := range o.affected {
			affected = append(affected, a)
		}
		sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
		c.Open = append(c.Open, OpenOutageCheckpoint{
			Epicenter:  o.epicenter,
			SignalPoPs: sigs,
			Start:      o.start,
			LastSignal: o.lastSignal,
			Waiting:    sortKeySet(o.waiting),
			Returned:   sortKeySet(o.returned),
			LastReturn: o.lastReturn,
			Affected:   affected,
			Confirmed:  o.confirmed,
			DPChecked:  o.dpChecked,
			Merged:     o.merged,
		})
	}
	for _, id := range inv.pendingIDs() {
		p := inv.pending[id]
		pc := PendingProbeCheckpoint{
			ID:         p.id,
			At:         p.at,
			Deadline:   p.deadline,
			Epicenter:  p.epicenter,
			Candidates: append([]colo.PoP(nil), p.candidates...),
			SignalPoP:  p.signalPop,
			Affected:   append([]bgp.ASN(nil), p.affected...),
			Paths:      p.paths,
			Waiting:    sortKeySet(p.waiting),
			Returned:   sortKeySet(p.returned),
			LastReturn: p.lastReturn,
		}
		for _, r := range p.recs {
			pc.Recs = append(pc.Recs, DivertRecCheckpoint{Key: ckptKey(r.key), Near: r.ends.near, Far: r.ends.far})
		}
		c.Pending = append(c.Pending, pc)
	}
	return c
}

// restoreCheckpoint loads a checkpoint into a fresh pipeline: paths and
// stable-baseline entries are re-partitioned across the shards by shardOf
// (nil assigns everything to shard 0), derived indexes and promotion queues
// are rebuilt, the tracker and pending campaigns are reinstated, campaigns
// are re-submitted to the prober, and restoration watch sets are pushed to
// the shards exactly as the last pre-checkpoint barrier left them.
func restoreCheckpoint(c *Checkpoint, cfg Config, shards []*pathShard, inv *investigator, shardOf func(PathKey) int) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("core: checkpoint version %d, this build reads %d", c.Version, CheckpointVersion)
	}
	if len(c.Pending) > 0 && inv.prober == nil {
		return fmt.Errorf("core: checkpoint carries %d pending probe campaigns but no prober is wired (SetProber before RestoreFrom)", len(c.Pending))
	}
	if inv.feed != nil {
		// A checkpoint written without the watchdog restores it empty; the
		// replay-gate arithmetic only holds when FeedSilence matches across
		// runs, the same config binding every other knob has.
		inv.feed.Restore(c.Feed)
	}
	at := func(key PathKey) *pathShard {
		if shardOf == nil {
			return shards[0]
		}
		return shards[shardOf(key)]
	}

	for _, p := range c.Paths {
		key := p.Key.unpack()
		s := at(key)
		st := &pathState{
			tags: make([]pathTag, 0, len(p.Tags)),
			path: append(bgp.Path(nil), p.Path...),
		}
		for _, tag := range p.Tags {
			st.tags = append(st.tags, pathTag{pop: tag.PoP, ends: popEnd{near: tag.Near, far: tag.Far}, since: tag.Since})
			// Promotions are derivable: a tag promotes once it has survived
			// the stability window from Since. Entries already promoted pop
			// as idempotent re-insertions.
			s.promos = append(s.promos, promo{due: tag.Since.Add(cfg.StableWindow), key: key, pop: tag.PoP, since: tag.Since})
		}
		s.paths[key] = st
		if s.pathsOfPeer[key.Peer] == nil {
			s.pathsOfPeer[key.Peer] = make(map[PathKey]bool)
		}
		s.pathsOfPeer[key.Peer][key] = true
		s.countPath(st.path, +1)
	}
	for _, s := range shards {
		heap.Init(&s.promos)
	}
	for _, e := range c.Stable {
		key := e.Key.unpack()
		s := at(key)
		byNear := s.stable[e.PoP]
		if byNear == nil {
			byNear = make(map[bgp.ASN]map[PathKey]popEnd)
			s.stable[e.PoP] = byNear
		}
		set := byNear[e.Near]
		if set == nil {
			set = make(map[PathKey]popEnd)
			byNear[e.Near] = set
		}
		set[key] = popEnd{near: e.Near, far: e.Far}
	}

	inv.incidents = append([]Incident(nil), c.Incidents...)
	inv.completed = append([]Outage(nil), c.Completed...)
	inv.tracker.cooling = append([]Outage(nil), c.Cooling...)
	// Checkpoints do not carry in-flight trace evidence (traces of resolved
	// outages persist through the store WAL instead); restored cooling
	// entries resume with empty traces, kept index-aligned.
	inv.tracker.coolingTraces = make([]*OutageTrace, len(inv.tracker.cooling))
	for _, oc := range c.Open {
		o := &openOutage{
			epicenter:  oc.Epicenter,
			signalPops: make(map[colo.PoP]bool, len(oc.SignalPoPs)),
			start:      oc.Start,
			lastSignal: oc.LastSignal,
			waiting:    make(map[PathKey]bool, len(oc.Waiting)),
			returned:   make(map[PathKey]bool, len(oc.Returned)),
			lastReturn: oc.LastReturn,
			affected:   make(map[bgp.ASN]bool, len(oc.Affected)),
			confirmed:  oc.Confirmed,
			dpChecked:  oc.DPChecked,
			merged:     oc.Merged,
		}
		for _, p := range oc.SignalPoPs {
			o.signalPops[p] = true
		}
		for _, k := range oc.Waiting {
			o.waiting[k.unpack()] = true
		}
		for _, k := range oc.Returned {
			o.returned[k.unpack()] = true
		}
		for _, a := range oc.Affected {
			o.affected[a] = true
		}
		inv.tracker.opened[oc.Epicenter] = o
	}
	inv.probeSeq = c.ProbeSeq
	for _, pc := range c.Pending {
		p := &pendingConfirmation{
			id:         pc.ID,
			at:         pc.At,
			deadline:   pc.Deadline,
			epicenter:  pc.Epicenter,
			candidates: append([]colo.PoP(nil), pc.Candidates...),
			signalPop:  pc.SignalPoP,
			affected:   append([]bgp.ASN(nil), pc.Affected...),
			paths:      pc.Paths,
			waiting:    make(map[PathKey]bool, len(pc.Waiting)),
			returned:   make(map[PathKey]bool, len(pc.Returned)),
			lastReturn: pc.LastReturn,
		}
		for _, r := range pc.Recs {
			p.recs = append(p.recs, divertRec{key: r.Key.unpack(), ends: popEnd{near: r.Near, far: r.Far}})
		}
		for _, k := range pc.Waiting {
			p.waiting[k.unpack()] = true
		}
		for _, k := range pc.Returned {
			p.returned[k.unpack()] = true
		}
		inv.pending[p.id] = p
	}
	// Re-submit the interrupted campaigns in park order: the previous
	// process's prober died with its in-flight measurements, so the restored
	// one measures them afresh; a deterministic prober delivers the same
	// verdicts at the next bin close that the uninterrupted run collected.
	// No ProbeRequested hook fires — the event was already published and
	// persisted before the checkpoint.
	for _, id := range inv.pendingIDs() {
		p := inv.pending[id]
		inv.prober.Submit(ProbeRequest{
			ID:         p.id,
			At:         p.at,
			SignalPoP:  p.signalPop,
			Epicenter:  p.epicenter,
			Candidates: append([]colo.PoP(nil), p.candidates...),
		})
	}

	// Reinstate the restoration watch sets the last barrier distributed.
	sets := inv.tracker.watchSets(len(shards), shardOf)
	if len(inv.pending) > 0 {
		pendSets := inv.pendingWatchSets(len(shards), shardOf)
		for i := range sets {
			sets[i] = append(sets[i], pendSets[i]...)
		}
	}
	for i, s := range shards {
		s.watches = sets[i]
	}
	return nil
}
