package core

import (
	"sort"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
)

// Provenance traces answer "why did Kepler call this an outage?": the
// Section 4.3–4.4 methodology is a chain of evidence — signal groups over
// diverted stable paths, localization candidates considered and
// eliminated, collateral folds, data-plane verdicts — that the pipeline
// otherwise discards at each bin close. With Config.Tracing enabled the
// investigator records that chain per signal group, accumulates it on the
// group's open outage across bins, and hands the finished OutageTrace to
// Hooks.TraceRecorded immediately after the OutageResolved callback of the
// same outage (so trace i always describes resolved outage i).
//
// Traces are derived output: recording never influences classification,
// disambiguation, probing or outage tracking, so detection output is
// byte-for-byte identical with tracing on or off (pinned by the
// trace-equivalence pipeline test). With tracing off no trace structure is
// allocated and every recording site is a single nil check.

// TraceVersion identifies the OutageTrace encoding; bump on any
// incompatible change so persisted traces from older formats are dropped
// rather than misread.
const TraceVersion = 1

// Trace size caps. Evidence is sampled, never unbounded: a long oscillating
// outage or a huge signal group must not balloon the WAL or the API
// payloads. Dropped counts record what the caps cut.
const (
	// traceMaxChapters bounds investigation chapters per outage.
	traceMaxChapters = 32
	// traceMaxSignals bounds per-AS signals recorded per chapter.
	traceMaxSignals = 16
	// traceMaxPathsPerSignal bounds diverted-path samples per signal.
	traceMaxPathsPerSignal = 5
)

// TraceDivertedPath is one sampled diverted stable path contributing to a
// signal: the vantage AS and prefix identify the monitored path, Near/Far
// the affected interconnection, OldPath the abandoned AS path.
type TraceDivertedPath struct {
	Vantage bgp.ASN
	Prefix  string
	Near    bgp.ASN
	Far     bgp.ASN
	OldPath []bgp.ASN
}

// TraceSignal is one (PoP, near-AS) threshold crossing: Diverted of Stable
// baseline paths left the PoP within the bin (Section 4.2's per-AS
// grouping), with up to traceMaxPathsPerSignal sampled paths as evidence.
type TraceSignal struct {
	Near     bgp.ASN
	Diverted int
	Stable   int
	Paths    []TraceDivertedPath
}

// TraceStep is one decision in the classification/disambiguation walk:
// which candidates were considered at a stage, which were eliminated, and
// what (if anything) the stage chose. Outcome is a short human-readable
// verdict ("margin not met", "unique common IXP", ...).
type TraceStep struct {
	Stage      string
	Outcome    string
	Candidates []colo.PoP `json:",omitempty"`
	Eliminated []colo.PoP `json:",omitempty"`
	Chosen     colo.PoP   `json:",omitempty"`
}

// TraceFold records that this chapter's group was claimed as collateral of
// a more specific or larger concurrent signal (Section 4.3's correlation of
// signals from multiple PoPs): SharedPaths of TotalPaths already belonged
// to the dominating epicenter.
type TraceFold struct {
	Into        colo.PoP
	SharedPaths int
	TotalPaths  int
}

// TraceProbeResult is one measured candidate of a probe campaign.
type TraceProbeResult struct {
	Target    colo.PoP
	Confirmed bool
	HasData   bool
}

// TraceProbe records the data-plane campaign that validated (or localized)
// the chapter's group: inline DataPlane probes or an asynchronous campaign
// (Campaign is the pending-confirmation id, zero for inline probing).
// Outcome is "promoted", "confirmed", "unvalidated" or "inline".
type TraceProbe struct {
	Campaign   uint64
	Outcome    string
	Candidates []colo.PoP
	Results    []TraceProbeResult `json:",omitempty"`
	Epicenter  colo.PoP           `json:",omitempty"`
}

// TraceChapter is the evidence one bin's investigation contributed to an
// outage: the signal group (per-AS signals with stable-baseline counts and
// sampled diverted paths), the classification verdict, the disambiguation
// steps walked, any collateral fold, and the probe campaign verdict.
type TraceChapter struct {
	Bin       time.Time
	SignalPoP colo.PoP
	// Kind is the classification verdict (IncidentKind String form).
	Kind string
	// Epicenter is where disambiguation (plus folding/city abstraction)
	// finally attributed the group; zero while unresolved.
	Epicenter colo.PoP
	// StableTotal is the full stable-path baseline at the signal PoP.
	StableTotal int
	// TotalSignals counts the group's per-AS signals before sampling.
	TotalSignals int
	Signals      []TraceSignal
	Steps        []TraceStep `json:",omitempty"`
	Fold         *TraceFold  `json:",omitempty"`
	Probe        *TraceProbe `json:",omitempty"`
}

// OutageTrace is the complete evidence chain behind one resolved outage.
// Chapters appear in bin order; DroppedChapters counts evidence cut by
// traceMaxChapters.
type OutageTrace struct {
	Version int
	PoP     colo.PoP
	Start   time.Time
	End     time.Time
	// Merged counts oscillation segments folded into the traced incident,
	// mirroring Outage.Merged.
	Merged          int
	Chapters        []TraceChapter
	DroppedChapters int `json:",omitempty"`
}

// newChapter captures the chapter skeleton for one signal group: bin,
// signal PoP, baseline count and sampled per-AS signals. Old AS paths are
// deep-copied — the shard recycles its divert slabs at finishBin, so no
// shard-owned memory may outlive the barrier inside a trace.
func newChapter(at time.Time, pop colo.PoP, sigs []signal, stableTotal int) *TraceChapter {
	ch := &TraceChapter{
		Bin:          at,
		SignalPoP:    pop,
		StableTotal:  stableTotal,
		TotalSignals: len(sigs),
	}
	n := len(sigs)
	if n > traceMaxSignals {
		n = traceMaxSignals
	}
	ch.Signals = make([]TraceSignal, 0, n)
	for _, s := range sigs[:n] {
		ts := TraceSignal{Near: s.near, Diverted: len(s.diverted), Stable: s.stable}
		pn := len(s.diverted)
		if pn > traceMaxPathsPerSignal {
			pn = traceMaxPathsPerSignal
		}
		ts.Paths = make([]TraceDivertedPath, 0, pn)
		for _, r := range s.diverted[:pn] {
			ts.Paths = append(ts.Paths, TraceDivertedPath{
				Vantage: r.key.Peer,
				Prefix:  r.key.Prefix.String(),
				Near:    r.ends.near,
				Far:     r.ends.far,
				OldPath: append([]bgp.ASN(nil), r.oldPath...),
			})
		}
		ch.Signals = append(ch.Signals, ts)
	}
	return ch
}

// step appends a decision step; nil-safe so recording sites stay one-liners
// on the disabled path. Callers must guard argument construction that does
// real work (fmt.Sprintf, fraction recomputation) behind their own nil check:
// arguments are evaluated before the receiver is.
func (ch *TraceChapter) step(s TraceStep) {
	if ch == nil {
		return
	}
	ch.Steps = append(ch.Steps, s)
}

// traceAppend folds a finished chapter into the outage's accumulated trace.
func (inv *investigator) traceAppend(o *openOutage, ch *TraceChapter) {
	if ch == nil || o == nil {
		return
	}
	if o.trace == nil {
		o.trace = &OutageTrace{Version: TraceVersion, PoP: o.epicenter}
	}
	if len(o.trace.Chapters) >= traceMaxChapters {
		o.trace.DroppedChapters++
		return
	}
	o.trace.Chapters = append(o.trace.Chapters, *ch)
}

// popSliceSorted returns a sorted copy for deterministic trace output when
// the source order came from map iteration.
func popSliceSorted(in []colo.PoP) []colo.PoP {
	out := append([]colo.PoP(nil), in...)
	sortPoPs(out)
	return out
}

// facilityPoPs and ixpPoPs lift ID slices into sorted trace candidate
// lists. Sorting here matters: some sources (e.g. the common-IXP
// intersection) carry map-iteration order, which must not leak into traces.
func facilityPoPs(ids []colo.FacilityID) []colo.PoP {
	out := make([]colo.PoP, 0, len(ids))
	for _, id := range ids {
		out = append(out, colo.FacilityPoP(id))
	}
	sortPoPs(out)
	return out
}

func ixpPoPs(ids []colo.IXPID) []colo.PoP {
	out := make([]colo.PoP, 0, len(ids))
	for _, id := range ids {
		out = append(out, colo.IXPPoP(id))
	}
	sortPoPs(out)
	return out
}

func sortPoPs(p []colo.PoP) {
	sort.Slice(p, func(i, j int) bool {
		if p[i].Kind != p[j].Kind {
			return p[i].Kind < p[j].Kind
		}
		return p[i].ID < p[j].ID
	})
}
