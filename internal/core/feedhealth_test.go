package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/mrt"
)

// feedRunner is the Detector/Engine subset the feed tests drive.
type feedRunner interface {
	SetHooks(Hooks)
	Process(*mrt.Record) []Outage
	Flush(time.Time) []Outage
	Incidents() []Incident
	FeedHealth(time.Time) (bgpstream.FeedSnapshot, bool)
}

// runFeed replays the stream and returns the fired feed transitions in
// order, plus the detection output and the final watchdog snapshot.
func runFeed(t *testing.T, r feedRunner, recs []*mrt.Record) (trs []bgpstream.FeedTransition, outs []Outage, incs []Incident, snap bgpstream.FeedSnapshot) {
	t.Helper()
	r.SetHooks(Hooks{
		FeedDegraded:  func(tr bgpstream.FeedTransition) { trs = append(trs, tr) },
		FeedRecovered: func(tr bgpstream.FeedTransition) { trs = append(trs, tr) },
	})
	for _, rec := range recs {
		outs = append(outs, r.Process(rec)...)
	}
	last := recs[len(recs)-1].Time
	outs = append(outs, r.Flush(last)...)
	snap, ok := r.FeedHealth(last)
	if !ok {
		t.Fatal("FeedHealth reported no watchdog despite FeedSilence > 0")
	}
	return trs, outs, r.Incidents(), snap
}

// TestFeedEventsEngineDetectorEquivalence pins the watchdog's determinism
// contract: the sequential detector and engines at several shard counts fire
// identical feed transition sequences for the same record stream, and
// enabling the watchdog changes nothing about the detection output.
func TestFeedEventsEngineDetectorEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		recs := genStream(seed, 3000)
		cfg := DefaultConfig()
		cfg.FeedSilence = 20 * time.Minute

		dict, cmap, _ := microWorld(t)
		d := New(cfg, dict, cmap, nil)
		wantTrs, wantOuts, wantIncs, wantSnap := runFeed(t, d, recs)
		if len(wantTrs) == 0 {
			t.Fatalf("seed=%d: stream produced no feed transitions; silence threshold never crossed", seed)
		}

		// Baseline without the watchdog: detection output must be identical.
		plain := New(DefaultConfig(), dict, cmap, nil)
		var plainOuts []Outage
		for _, rec := range recs {
			plainOuts = append(plainOuts, plain.Process(rec)...)
		}
		plainOuts = append(plainOuts, plain.Flush(recs[len(recs)-1].Time)...)
		if !reflect.DeepEqual(plainOuts, wantOuts) {
			t.Errorf("seed=%d: watchdog changed the outage output", seed)
		}
		if !reflect.DeepEqual(plain.Incidents(), wantIncs) {
			t.Errorf("seed=%d: watchdog changed the incident log", seed)
		}

		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				e := NewEngine(cfg, dict, cmap, nil, shards)
				defer e.Close()
				trs, outs, incs, snap := runFeed(t, e, recs)
				if !reflect.DeepEqual(trs, wantTrs) {
					t.Errorf("feed transitions diverge: engine fired %d, detector %d\nengine: %+v\ndetector: %+v",
						len(trs), len(wantTrs), trs, wantTrs)
				}
				if !reflect.DeepEqual(outs, wantOuts) {
					t.Errorf("outage output diverges")
				}
				if !reflect.DeepEqual(incs, wantIncs) {
					t.Errorf("incident log diverges")
				}
				if !reflect.DeepEqual(snap, wantSnap) {
					t.Errorf("final feed snapshot diverges:\nengine: %+v\ndetector: %+v", snap, wantSnap)
				}
			})
		}
	}
}

// TestFeedCheckpointRestoreEquivalence verifies the watchdog state
// round-trips through Checkpoint/RestoreFrom: a restored pipeline replaying
// the record suffix fires exactly the feed transitions the uninterrupted
// reference fired after the checkpoint bin, across shard counts.
func TestFeedCheckpointRestoreEquivalence(t *testing.T) {
	recs := genStream(2, 3000)
	cfg := DefaultConfig()
	cfg.FeedSilence = 20 * time.Minute
	dict, cmap, _ := microWorld(t)

	ref := New(cfg, dict, cmap, nil)
	wantTrs, _, _, _ := runFeed(t, ref, recs)
	if len(wantTrs) == 0 {
		t.Fatal("stream produced no feed transitions")
	}

	// Checkpoint from the engine's BinClosed hooks up to the cut.
	e := NewEngine(cfg, dict, cmap, nil, 4)
	var enc []byte
	e.SetHooks(Hooks{BinClosed: func(end time.Time) {
		c, err := e.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint at %v: %v", end, err)
		}
		b, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		enc = b
	}})
	cut := len(recs) * 3 / 4
	for _, r := range recs[:cut] {
		e.Process(r)
	}
	e.Close()
	if enc == nil {
		t.Fatal("no checkpoint captured before the cut")
	}
	c, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Feed.Sessions) == 0 {
		t.Fatal("checkpoint carries no watchdog session state")
	}

	// Transitions the reference fired strictly after the checkpoint bin.
	var wantSuffix []bgpstream.FeedTransition
	for _, tr := range wantTrs {
		if tr.At.After(c.BinStart) {
			wantSuffix = append(wantSuffix, tr)
		}
	}

	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("restore-shards=%d", shards), func(t *testing.T) {
			var r feedRunner
			if shards == 0 {
				d := New(cfg, dict, cmap, nil)
				if err := d.RestoreFrom(c); err != nil {
					t.Fatal(err)
				}
				r = d
			} else {
				re := NewEngine(cfg, dict, cmap, nil, shards)
				defer re.Close()
				if err := re.RestoreFrom(c); err != nil {
					t.Fatal(err)
				}
				r = re
			}
			trs, _, _, _ := runFeed(t, r, recs[c.Records:])
			if !reflect.DeepEqual(trs, wantSuffix) {
				t.Errorf("restored run fired %d transitions, reference suffix has %d\nrestored: %+v\nreference: %+v",
					len(trs), len(wantSuffix), trs, wantSuffix)
			}
		})
	}
}
