package core

import (
	"sort"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
)

// openOutage tracks one ongoing PoP outage.
type openOutage struct {
	epicenter  colo.PoP
	signalPops map[colo.PoP]bool // PoPs whose return indicates restoration
	start      time.Time
	lastSignal time.Time
	waiting    map[PathKey]bool // diverted paths not yet returned
	returned   map[PathKey]bool
	lastReturn time.Time
	affected   map[bgp.ASN]bool
	confirmed  bool
	dpChecked  bool
	merged     int
	// trace accumulates the provenance evidence chain (Config.Tracing);
	// nil when tracing is disabled or no chapter has been recorded yet.
	trace *OutageTrace
}

// outageTracker maintains open outages, restoration detection and
// oscillation merging (Section 4.4: two outages of one PoP separated by
// less than 12 hours form a single incident).
type outageTracker struct {
	cfg     Config
	opened  map[colo.PoP]*openOutage
	cooling []Outage // closed, awaiting the oscillation window
	// coolingTraces parallels cooling index-for-index: the accumulated
	// trace rides beside its finalized Outage through the oscillation
	// window (Outage itself is a serialized value type and cannot carry
	// it). Entries are nil with tracing disabled or after a checkpoint
	// restore. Every cooling mutation must keep the two aligned.
	coolingTraces []*OutageTrace
}

func newOutageTracker(cfg Config) *outageTracker {
	return &outageTracker{cfg: cfg, opened: make(map[colo.PoP]*openOutage)}
}

// observe feeds a PoP-level signal group attributed to an epicenter.
func (t *outageTracker) observe(at time.Time, epicenter colo.PoP, g *popGroup, confirmed, checked bool) {
	o := t.opened[epicenter]
	if o == nil {
		// Oscillation: a recently closed outage of the same PoP reopens
		// as the same incident.
		for i := len(t.cooling) - 1; i >= 0; i-- {
			c := t.cooling[i]
			if c.PoP == epicenter && at.Sub(c.End) < t.cfg.OscillationGap {
				o = &openOutage{
					epicenter:  epicenter,
					signalPops: map[colo.PoP]bool{},
					start:      c.Start,
					waiting:    map[PathKey]bool{},
					returned:   map[PathKey]bool{},
					affected:   map[bgp.ASN]bool{},
					confirmed:  c.Confirmed,
					dpChecked:  c.DataPlaneChecked,
					merged:     c.Merged + 1,
				}
				for _, a := range c.AffectedASes {
					o.affected[a] = true
				}
				// The oscillation segments form one incident: the merged
				// trace keeps accumulating where the closed segment stopped.
				o.trace = t.coolingTraces[i]
				t.cooling = append(t.cooling[:i], t.cooling[i+1:]...)
				t.coolingTraces = append(t.coolingTraces[:i], t.coolingTraces[i+1:]...)
				break
			}
		}
	}
	if o == nil {
		o = &openOutage{
			epicenter:  epicenter,
			signalPops: map[colo.PoP]bool{},
			start:      at.Add(-t.cfg.BinInterval), // signal raised at bin end; outage began within the bin
			waiting:    map[PathKey]bool{},
			returned:   map[PathKey]bool{},
			affected:   map[bgp.ASN]bool{},
		}
		t.opened[epicenter] = o
	} else {
		t.opened[epicenter] = o
	}
	o.lastSignal = at
	o.signalPops[g.pop] = true
	o.confirmed = o.confirmed || confirmed
	o.dpChecked = o.dpChecked || checked
	for _, s := range g.signals {
		for _, r := range s.diverted {
			if !o.returned[r.key] {
				o.waiting[r.key] = true
			}
			if r.ends.near != 0 {
				o.affected[r.ends.near] = true
			}
			if r.ends.far != 0 {
				o.affected[r.ends.far] = true
			}
		}
	}
}

// applyReturns reconciles the shards' reported path returns into the
// authoritative waiting/returned sets. It runs at every bin barrier before
// signal investigation, so the tracker observes exactly the returns the
// sequential detector's inline walk would have recorded mid-bin; lastReturn
// takes the max because the reports of concurrent shards arrive unordered
// while the record stream itself is time-ordered.
func (t *outageTracker) applyReturns(evs []returnEvent) {
	for _, ev := range evs {
		o := t.opened[ev.epicenter]
		if o == nil || !o.waiting[ev.key] {
			continue
		}
		delete(o.waiting, ev.key)
		o.returned[ev.key] = true
		if ev.at.After(o.lastReturn) {
			o.lastReturn = ev.at
		}
	}
}

// watchSets partitions each open outage's waiting set across n shards so
// the per-path layer can detect returns without touching the tracker.
// Waiting maps are copied (shards consume their copies); signalPops is
// shared read-only — the tracker only mutates it at bin barriers, when the
// shards are paused, and pushes fresh watch sets afterwards. A nil shardOf
// assigns everything to shard 0.
func (t *outageTracker) watchSets(n int, shardOf func(PathKey) int) [][]shardWatch {
	out := make([][]shardWatch, n)
	if len(t.opened) == 0 {
		return out
	}
	for _, o := range t.opened {
		per := make([]map[PathKey]bool, n)
		for key := range o.waiting {
			i := 0
			if shardOf != nil {
				i = shardOf(key)
			}
			if per[i] == nil {
				per[i] = make(map[PathKey]bool)
			}
			per[i][key] = true
		}
		for i := range per {
			if per[i] != nil {
				out[i] = append(out[i], shardWatch{epicenter: o.epicenter, signalPops: o.signalPops, waiting: per[i]})
			}
		}
	}
	return out
}

// idle reports whether the tracker has neither open nor cooling outages —
// a bin close with no diverts is then a no-op.
func (t *outageTracker) idle() bool { return len(t.opened) == 0 && len(t.cooling) == 0 }

// tick runs at every bin boundary: closes restored outages and emits
// closed outages whose oscillation window has passed.
func (t *outageTracker) tick(now time.Time, inv *investigator) {
	var closed []colo.PoP
	for pop, o := range t.opened {
		total := len(o.waiting) + len(o.returned)
		if total == 0 {
			continue
		}
		if float64(len(o.returned))/float64(total) > t.cfg.RestoreFraction {
			closed = append(closed, pop)
		}
	}
	sort.Slice(closed, func(i, j int) bool {
		if closed[i].Kind != closed[j].Kind {
			return closed[i].Kind < closed[j].Kind
		}
		return closed[i].ID < closed[j].ID
	})
	for _, pop := range closed {
		o := t.opened[pop]
		end := o.lastReturn
		if end.IsZero() {
			end = now
		}
		t.cooling = append(t.cooling, t.finalize(o, end))
		t.coolingTraces = append(t.coolingTraces, o.trace)
		delete(t.opened, pop)
	}

	// Emit cooled-off outages.
	var keep []Outage
	var keepTraces []*OutageTrace
	for i, c := range t.cooling {
		if now.Sub(c.End) >= t.cfg.OscillationGap {
			inv.emit(c, t.coolingTraces[i])
		} else {
			keep = append(keep, c)
			keepTraces = append(keepTraces, t.coolingTraces[i])
		}
	}
	t.cooling = keep
	t.coolingTraces = keepTraces
}

// drainCooling emits every closed outage regardless of the oscillation
// window (stream end).
func (t *outageTracker) drainCooling(inv *investigator) {
	for i, c := range t.cooling {
		inv.emit(c, t.coolingTraces[i])
	}
	t.cooling = nil
	t.coolingTraces = nil
}

// closeAll force-closes everything at stream end.
func (t *outageTracker) closeAll(asOf time.Time) {
	pops := make([]colo.PoP, 0, len(t.opened))
	for pop := range t.opened {
		pops = append(pops, pop)
	}
	sort.Slice(pops, func(i, j int) bool {
		if pops[i].Kind != pops[j].Kind {
			return pops[i].Kind < pops[j].Kind
		}
		return pops[i].ID < pops[j].ID
	})
	for _, pop := range pops {
		o := t.opened[pop]
		// Prefer the last observed path return as the restoration instant;
		// an outage with no returns ends, as far as we can tell, at the
		// stream horizon.
		end := o.lastReturn
		if end.IsZero() {
			end = asOf
		}
		if end.Before(o.lastSignal) {
			end = o.lastSignal
		}
		t.cooling = append(t.cooling, t.finalize(o, end))
		t.coolingTraces = append(t.coolingTraces, o.trace)
		delete(t.opened, pop)
	}
}

func (t *outageTracker) finalize(o *openOutage, end time.Time) Outage {
	affected := make([]bgp.ASN, 0, len(o.affected))
	for a := range o.affected {
		affected = append(affected, a)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	// Deterministic representative: order by (Kind, ID) — a bare ID
	// comparison ties between PoPs of different kinds sharing an ID and
	// would leave the choice to map iteration order.
	var sigPop colo.PoP
	for pop := range o.signalPops {
		if !sigPop.IsValid() || pop.Kind < sigPop.Kind ||
			(pop.Kind == sigPop.Kind && pop.ID < sigPop.ID) {
			sigPop = pop
		}
	}
	return Outage{
		PoP:              o.epicenter,
		SignalPoP:        sigPop,
		Start:            o.start,
		End:              end,
		Confirmed:        o.confirmed,
		DataPlaneChecked: o.dpChecked,
		AffectedASes:     affected,
		DivertedPaths:    len(o.waiting) + len(o.returned),
		Merged:           o.merged,
	}
}

// open returns the epicenters of currently open outages.
func (t *outageTracker) open() []colo.PoP {
	out := make([]colo.PoP, 0, len(t.opened))
	for pop := range t.opened {
		out = append(out, pop)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].ID < out[j].ID
	})
	return out
}
