package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/geo"
)

// popGroup aggregates all signals raised for one PoP within a bin.
type popGroup struct {
	pop     colo.PoP
	signals []signal
	links   map[popEnd]bool
	nears   map[bgp.ASN]bool
	fars    map[bgp.ASN]bool
	paths   int
	// probeCands is the disambiguation candidate set recorded by
	// resolveByProbe in asynchronous-prober mode: openOutageFor parks the
	// group as a campaign over these instead of probing inline.
	probeCands []colo.PoP
	// trace is the provenance chapter under construction (Config.Tracing);
	// nil when tracing is disabled. Built during the pure classification on
	// the worker, so recording stays deterministic at any worker count.
	trace *TraceChapter
}

func buildGroup(pop colo.PoP, signals []signal) *popGroup {
	g := &popGroup{
		pop: pop, signals: signals,
		links: map[popEnd]bool{}, nears: map[bgp.ASN]bool{}, fars: map[bgp.ASN]bool{},
	}
	for _, s := range signals {
		for _, r := range s.diverted {
			g.paths++
			if r.ends.near != 0 {
				g.nears[r.ends.near] = true
			}
			if r.ends.far != 0 && r.ends.near != 0 {
				g.fars[r.ends.far] = true
				g.links[r.ends] = true
			}
		}
	}
	return g
}

func (g *popGroup) affectedASes() []bgp.ASN {
	set := map[bgp.ASN]bool{}
	for a := range g.nears {
		set[a] = true
	}
	for a := range g.fars {
		set[a] = true
	}
	out := make([]bgp.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// commonAS returns the single AS every affected link shares, or 0.
func (g *popGroup) commonAS() bgp.ASN {
	var links []popEnd
	for l := range g.links {
		links = append(links, l)
	}
	if len(links) == 0 {
		return 0
	}
	// The intersection fold below is order-independent, but sort anyway:
	// determinism that is visible mechanically beats determinism that
	// needs a commutativity argument.
	sort.Slice(links, func(i, j int) bool {
		if links[i].near != links[j].near {
			return links[i].near < links[j].near
		}
		return links[i].far < links[j].far
	})
	cands := map[bgp.ASN]bool{links[0].near: true, links[0].far: true}
	for _, l := range links[1:] {
		next := map[bgp.ASN]bool{}
		if cands[l.near] {
			next[l.near] = true
		}
		if cands[l.far] {
			next[l.far] = true
		}
		cands = next
		if len(cands) == 0 {
			return 0
		}
	}
	// Deterministic pick if both endpoints of a single link survive.
	var out bgp.ASN
	for a := range cands {
		if out == 0 || a < out {
			out = a
		}
	}
	return out
}

// majorityPathShare is the fraction of the group's diverted old paths an
// AS must appear on to count as a common-cause candidate. Strict
// intersection is too brittle: when a transit AS fails, its customers
// rehome and second-order churn diverts paths that never crossed the
// failed AS.
const majorityPathShare = 0.8

// commonPathASes returns the ASes present on at least majorityPathShare of
// the group's diverted old paths, most frequent first — the Section 4.3
// AS-level candidates. Callers must pair this with a global-health test:
// collector peers trivially appear on all of their own paths.
func (g *popGroup) commonPathASes() []bgp.ASN {
	count := map[bgp.ASN]int{}
	total := 0
	for _, s := range g.signals {
		for _, r := range s.diverted {
			if len(r.oldPath) == 0 {
				continue
			}
			total++
			for _, a := range r.oldPath {
				count[a]++
			}
		}
	}
	if total == 0 {
		return nil
	}
	min := int(majorityPathShare * float64(total))
	if float64(min) < majorityPathShare*float64(total) {
		min++ // ceiling: a sub-majority count must not qualify
	}
	if min < 1 {
		min = 1
	}
	var out []bgp.ASN
	for a, n := range count {
		if n >= min {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if count[out[i]] != count[out[j]] {
			return count[out[i]] > count[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// pathKeys returns the set of diverted path keys of the group.
func (g *popGroup) pathKeys() map[PathKey]bool {
	out := make(map[PathKey]bool, g.paths)
	for _, s := range g.signals {
		for _, r := range s.diverted {
			out[r.key] = true
		}
	}
	return out
}

// vanishedCommonAS returns an AS present on (nearly) every diverted old
// path that has also lost the bulk of its monitored presence — the
// AS-level test of Section 4.3. A hub that lost one site keeps most of its
// paths elsewhere and does not qualify; a de-peered or failed AS drops to
// (near) zero.
func (inv *investigator) vanishedCommonAS(g *popGroup) bgp.ASN {
	for _, z := range g.commonPathASes() {
		divertedThrough := 0
		for _, s := range g.signals {
			for _, r := range s.diverted {
				if r.oldPath.Contains(z) {
					divertedThrough++
				}
			}
		}
		// Remaining monitored paths through z after the bin's changes: if
		// fewer survive than left, z itself is the casualty.
		if inv.view.pathsContaining(z) < divertedThrough {
			return z
		}
	}
	return 0
}

// commonOrgEverywhere reports whether a single organization touches every
// affected link (operator-level incidents, Section 4.3).
func (inv *investigator) commonOrgEverywhere(g *popGroup) bool {
	if inv.orgs == nil || len(g.links) == 0 {
		return false
	}
	type org = uint32
	cands := map[org]bool{}
	first := true
	for l := range g.links {
		here := map[org]bool{}
		if id := inv.orgs.OrgOf(l.near); id != 0 {
			here[org(id)] = true
		}
		if id := inv.orgs.OrgOf(l.far); id != 0 {
			here[org(id)] = true
		}
		if first {
			cands = here
			first = false
			continue
		}
		next := map[org]bool{}
		for o := range cands {
			if here[o] {
				next[o] = true
			}
		}
		cands = next
		if len(cands) == 0 {
			return false
		}
	}
	return len(cands) > 0
}

// distinctNonSiblings counts ASes that belong to pairwise-different
// organizations (unknown orgs count individually).
func (inv *investigator) distinctNonSiblings(set map[bgp.ASN]bool) int {
	asns := make([]bgp.ASN, 0, len(set))
	for a := range set {
		if a != 0 {
			asns = append(asns, a)
		}
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	if inv.orgs == nil {
		return len(asns)
	}
	return inv.orgs.DistinctOrgs(asns)
}

// binVanishedAS looks for a single AS that explains the whole bin: present
// on most diverted paths across *all* signals and globally vanished. The
// death of a densely connected transit AS floods every monitored PoP with
// collateral signals (the paper's Figure 9a event B at planetary scale);
// no per-PoP test can see that, only the bin-wide view.
func (inv *investigator) binVanishedAS(signals []signal) bgp.ASN {
	count := map[bgp.ASN]int{}
	seen := map[PathKey]bool{}
	total := 0
	for _, s := range signals {
		for _, r := range s.diverted {
			if len(r.oldPath) == 0 || seen[r.key] {
				continue
			}
			seen[r.key] = true
			total++
			for _, a := range r.oldPath {
				count[a]++
			}
		}
	}
	if total < 10 {
		return 0 // too small for a global judgement
	}
	// No exclusions here: a healthy collector peer appears on all of its
	// own paths but keeps its global presence, so the vanished test below
	// rejects it; a failing tier-1 that is itself a vantage must stay
	// eligible.
	min := int(0.6 * float64(total))
	if float64(min) < 0.6*float64(total) {
		min++
	}
	var cands []bgp.ASN
	for a, n := range count {
		if n >= min {
			cands = append(cands, a)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if count[cands[i]] != count[cands[j]] {
			return count[cands[i]] > count[cands[j]]
		}
		return cands[i] < cands[j]
	})
	for _, z := range cands {
		if inv.view.pathsContaining(z) < count[z] {
			return z
		}
	}
	return 0
}

// groupResult is the outcome of classifying one per-PoP signal group.
type groupResult struct {
	group *popGroup
	inc   Incident
	// popLevel marks a PoP-level classification whose (group, epicenter)
	// continues into collateral folding and outage opening.
	popLevel bool
	// epicenter is the disambiguated epicenter of a PoP-level group (zero
	// when unresolved).
	epicenter colo.PoP
	// needProbe asks the serial merge to probe the group's recorded
	// candidates against the synchronous data plane: classification itself
	// is pure, so inline dp.Confirm calls are deferred to the merge where
	// they run in deterministic group order.
	needProbe bool
}

// workerCount returns how many goroutines to classify groups on.
func (inv *investigator) workerCount(groups int) int {
	w := inv.cfg.InvestWorkers
	if w > groups {
		w = groups
	}
	if w < 1 {
		w = 1
	}
	return w
}

// classifyGroup runs the Section 4.3 classification flowchart over one
// per-PoP signal group. It is pure with respect to the investigator — it
// only reads quiesced shard state (via the view), the colocation map and
// the org table — which is what makes the classification phase safe to fan
// across workers.
func (inv *investigator) classifyGroup(at time.Time, pop colo.PoP, sigs []signal, binCommon bgp.ASN) groupResult {
	g := buildGroup(pop, sigs)
	if inv.cfg.Tracing {
		g.trace = newChapter(at, pop, sigs, inv.totalStableAt(pop))
	}
	affected := g.affectedASes()
	inc := Incident{
		Time: at, SignalPoP: pop, PoP: pop,
		AffectedASes: affected, Links: len(g.links), Paths: g.paths,
	}
	r := groupResult{group: g}
	switch {
	case binCommon != 0:
		// One vanished AS explains the whole bin's churn.
		inc.Kind = IncidentAS
		inc.CommonAS = binCommon
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "classify",
				Outcome: fmt.Sprintf("AS-level: vanished AS%d explains the whole bin's churn", binCommon)})
		}
	case len(affected) <= inv.cfg.MinInvestigationASes:
		inc.Kind = IncidentLink
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "classify",
				Outcome: fmt.Sprintf("link-level: only %d affected ASes (investigation threshold %d)",
					len(affected), inv.cfg.MinInvestigationASes)})
		}
	case g.commonAS() != 0:
		inc.Kind = IncidentAS
		inc.CommonAS = g.commonAS()
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "classify",
				Outcome: fmt.Sprintf("AS-level: AS%d is common to every affected link", inc.CommonAS)})
		}
	case inv.vanishedCommonAS(g) != 0:
		// Every diverted route used to traverse one common AS and
		// that AS lost (nearly) all of its monitored paths globally:
		// its disappearance, not the tagged PoP, explains the signal.
		inc.Kind = IncidentAS
		inc.CommonAS = inv.vanishedCommonAS(g)
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "classify",
				Outcome: fmt.Sprintf("AS-level: AS%d on nearly every diverted path and globally vanished", inc.CommonAS)})
		}
	case inv.commonOrgEverywhere(g):
		inc.Kind = IncidentOperator
		g.trace.step(TraceStep{Stage: "classify",
			Outcome: "operator-level: one organization touches every affected link"})
	case inv.distinctNonSiblings(g.nears) >= inv.cfg.MinDisjointEnds &&
		inv.distinctNonSiblings(g.fars) >= inv.cfg.MinDisjointEnds &&
		inv.aggregateFraction(g) >= inv.cfg.Tfail/2:
		// The aggregate gate keeps collateral dribble (a few rerouted
		// paths that merely *crossed* the PoP) from masquerading as a
		// PoP outage, while staying below Tfail itself so that partial
		// outages of regional ASes — the reason Section 4.2 groups per
		// AS in the first place — still qualify.
		inc.Kind = IncidentPoP
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "classify",
				Outcome: fmt.Sprintf("PoP-level: %d near / %d far disjoint organizations, aggregate fraction %.2f",
					inv.distinctNonSiblings(g.nears), inv.distinctNonSiblings(g.fars), inv.aggregateFraction(g))})
		}
		epicenter := inv.disambiguate(g, at)
		inc.PoP = epicenter
		r.popLevel = true
		r.epicenter = epicenter
		// An unresolved epicenter with recorded candidates and a
		// synchronous data plane resolves by inline probing at the merge;
		// in asynchronous-prober mode openOutageFor parks a campaign
		// instead.
		r.needProbe = !epicenter.IsValid() && len(g.probeCands) > 0 &&
			inv.prober == nil && inv.dp != nil
	default:
		// Too few disjoint ends for PoP-level, broader than one AS:
		// conservative AS-level classification.
		inc.Kind = IncidentAS
		g.trace.step(TraceStep{Stage: "classify",
			Outcome: "AS-level fallback: too few disjoint ends for a PoP-level inference"})
	}
	r.inc = inc
	if g.trace != nil {
		g.trace.Kind = inc.Kind.String()
		if r.popLevel {
			g.trace.Epicenter = r.epicenter
		}
	}
	return r
}

// investigate classifies this bin's signals and feeds PoP-level epicenters
// to the outage tracker (Sections 4.3's flowchart).
func (inv *investigator) investigate(at time.Time, signals []signal) {
	groups := map[colo.PoP][]signal{}
	var order []colo.PoP
	for _, s := range signals {
		if _, ok := groups[s.pop]; !ok {
			order = append(order, s.pop)
		}
		groups[s.pop] = append(groups[s.pop], s)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Kind != order[j].Kind {
			return order[i].Kind < order[j].Kind
		}
		return order[i].ID < order[j].ID
	})

	type resolved struct {
		group     *popGroup
		epicenter colo.PoP
	}
	var popLevel []resolved

	binCommon := inv.binVanishedAS(signals)

	// Classification phase: every per-PoP group is classified by the pure
	// classifyGroup — optionally fanned across a worker pool (the groups
	// are independent until the folding below, and classification only
	// reads quiesced shard state). The merge that follows walks results in
	// the sorted group order, so output is byte-for-byte identical to the
	// inline path regardless of worker count.
	results := make([]groupResult, len(order))
	if workers := inv.workerCount(len(order)); workers > 1 {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = inv.classifyGroup(at, order[i], groups[order[i]], binCommon)
				}
			}()
		}
		for i := range order {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range order {
			results[i] = inv.classifyGroup(at, order[i], groups[order[i]], binCommon)
		}
	}

	// Serial merge, in group order: run the data-plane probes that
	// classification deferred (keeping the dp.Confirm call sequence
	// identical to a fully sequential investigation), log the incident,
	// fire hooks, and collect the PoP-level groups.
	for i := range results {
		r := &results[i]
		if r.needProbe {
			epi := inv.probeCandidates(at, r.group.probeCands, r.group.trace)
			r.inc.PoP = epi
			r.epicenter = epi
		}
		inv.incidents = append(inv.incidents, r.inc)
		if inv.hooks.IncidentClassified != nil {
			inv.hooks.IncidentClassified(r.inc)
		}
		if r.popLevel {
			popLevel = append(popLevel, resolved{group: r.group, epicenter: r.epicenter})
		}
	}

	// Collateral folding: a diverted path is usually tagged at several
	// PoPs, so one physical failure raises signals at every tagged PoP the
	// rerouted paths abandoned. Resolved epicenters claim paths in order
	// of localization specificity (facility, then IXP, then city), larger
	// groups first; a group whose paths mostly belong to an
	// already-claimed epicenter is collateral of that epicenter
	// (Section 4.3's correlation of signals from multiple PoPs).
	if len(popLevel) > 1 {
		rank := func(p colo.PoP) int {
			switch p.Kind {
			case colo.PoPFacility:
				return 0
			case colo.PoPIXP:
				return 1
			case colo.PoPCity:
				return 2
			default:
				return 3 // unresolved epicenters claim nothing
			}
		}
		sort.SliceStable(popLevel, func(i, j int) bool {
			ri, rj := rank(popLevel[i].epicenter), rank(popLevel[j].epicenter)
			if ri != rj {
				return ri < rj
			}
			return popLevel[i].group.paths > popLevel[j].group.paths
		})
		claimed := map[PathKey]colo.PoP{} // path -> dominating epicenter
		for i := range popLevel {
			r := &popLevel[i]
			keys := r.group.pathKeys()
			byEpi := map[colo.PoP]int{}
			for k := range keys {
				if epi, ok := claimed[k]; ok {
					byEpi[epi]++
				}
			}
			var domEpi colo.PoP
			domN := 0
			for epi, n := range byEpi {
				if n > domN || (n == domN && (epi.Kind < domEpi.Kind ||
					(epi.Kind == domEpi.Kind && epi.ID < domEpi.ID))) {
					domEpi, domN = epi, n
				}
			}
			if domN*4 >= len(keys)*3 && domEpi.IsValid() {
				// ≥75% of this group's paths already belong to a more
				// specific or larger signal: collateral, not a separate
				// outage.
				if r.group.trace != nil {
					r.group.trace.Fold = &TraceFold{Into: domEpi, SharedPaths: domN, TotalPaths: len(keys)}
				}
				r.epicenter = domEpi
				continue
			}
			if !r.epicenter.IsValid() {
				continue
			}
			for k := range keys {
				if _, ok := claimed[k]; !ok {
					claimed[k] = r.epicenter
				}
			}
		}
	}

	if len(popLevel) == 0 {
		return
	}

	// City abstraction: multiple distinct epicenters in one city within a
	// bin collapse to a city-level incident. Unresolved groups are binned
	// by their signal PoP's city so a resolved sibling signal can absorb
	// them.
	byCity := map[geo.CityID][]resolved{}
	for _, r := range popLevel {
		city := inv.cmap.CityOf(r.epicenter)
		if !r.epicenter.IsValid() {
			city = inv.cmap.CityOf(r.group.pop)
		}
		byCity[city] = append(byCity[city], r)
	}
	cityIDs := make([]geo.CityID, 0, len(byCity))
	for c := range byCity {
		cityIDs = append(cityIDs, c)
	}
	sort.Slice(cityIDs, func(i, j int) bool { return cityIDs[i] < cityIDs[j] })

	for _, cityID := range cityIDs {
		rs := byCity[cityID]
		// Distinct facility/IXP epicenters in this city. City-kind
		// epicenters are unrefined city-granularity signals: they are
		// consistent with whatever infrastructure epicenter the other
		// signals isolated and do not count as separate convergences.
		infra := map[colo.PoP]bool{}
		// strongFacility marks facility epicenters derived from direct
		// facility/IXP signals (not just refined city signals).
		strongFacility := map[colo.PoP]bool{}
		for _, r := range rs {
			if r.epicenter.Kind == colo.PoPFacility || r.epicenter.Kind == colo.PoPIXP {
				infra[r.epicenter] = true
				if r.epicenter.Kind == colo.PoPFacility && r.group.pop.Kind != colo.PoPCity {
					strongFacility[r.epicenter] = true
				}
			}
		}
		// Fabric reconciliation (Figure 2(b)): an IXP epicenter whose
		// fabric extends into a concurrently-failed facility epicenter is
		// explained by that facility — the IXP signal is collateral. Only
		// facility epicenters backed by direct facility/IXP signals may
		// absorb an IXP epicenter.
		for pop := range infra {
			if pop.Kind != colo.PoPIXP {
				continue
			}
			if ixp, ok := inv.cmap.IXP(colo.IXPID(pop.ID)); ok {
				for _, fid := range ixp.Facilities {
					if strongFacility[colo.FacilityPoP(fid)] {
						delete(infra, pop)
						break
					}
				}
			}
		}
		switch {
		case len(infra) > 1 && cityID != geo.NoCity:
			// Multiple infrastructures converged: abstract to city level.
			city := colo.CityPoP(cityID)
			for _, r := range rs {
				inv.openOutageFor(at, city, r.group)
			}
		case len(infra) == 1:
			// One infrastructure epicenter explains the city's signals.
			var epicenter colo.PoP
			for p := range infra {
				epicenter = p
			}
			for _, r := range rs {
				inv.openOutageFor(at, epicenter, r.group)
			}
		default:
			for _, r := range rs {
				inv.openOutageFor(at, r.epicenter, r.group)
			}
		}
	}
}

// openOutageFor validates against the data plane and hands the signal to
// the duration tracker. Unresolved epicenters (disambiguation did not
// converge to a specific infrastructure) are dropped — Kepler never
// reports a location it could not corroborate; the signal remains visible
// in the incident log.
func (inv *investigator) openOutageFor(at time.Time, epicenter colo.PoP, g *popGroup) {
	confirmed, checked := false, false
	if !epicenter.IsValid() {
		if inv.prober != nil && len(g.probeCands) > 0 {
			// Asynchronous mode: disambiguation deferred to a campaign over
			// the recorded candidates; the group parks until the verdict.
			inv.park(at, colo.PoP{}, g.probeCands, g)
			return
		}
		if inv.cfg.ReportUnresolved && inv.dp == nil && inv.prober == nil {
			epicenter = g.pop
		} else {
			return
		}
	} else if inv.prober != nil {
		// Asynchronous mode: the epicenter is known but unvalidated; park a
		// single-target confirmation campaign instead of probing inline.
		inv.park(at, epicenter, []colo.PoP{epicenter}, g)
		return
	}
	if inv.dp != nil {
		c, hasData := inv.dp.Confirm(epicenter, at)
		if g.trace != nil && g.trace.Probe == nil {
			// Validation of an already-localized epicenter; disambiguation
			// probes (recorded by probeCandidates) take precedence.
			g.trace.Probe = &TraceProbe{
				Outcome:    "inline",
				Candidates: []colo.PoP{epicenter},
				Results:    []TraceProbeResult{{Target: epicenter, Confirmed: c, HasData: hasData}},
				Epicenter:  epicenter,
			}
		}
		if hasData {
			checked = true
			confirmed = c
			if !confirmed {
				// Data plane contradicts the control plane: treat as a
				// false positive and do not open an outage (Section 4.4).
				return
			}
		}
	}
	if g.trace != nil && epicenter != g.trace.Epicenter {
		// Collateral folding or city abstraction moved the group off the
		// epicenter its own disambiguation produced.
		g.trace.step(TraceStep{Stage: "reattribution", Chosen: epicenter,
			Outcome: "group attributed to a concurrent epicenter by collateral folding or city abstraction"})
		g.trace.Epicenter = epicenter
	}
	existed := inv.tracker.opened[epicenter] != nil
	inv.tracker.observe(at, epicenter, g, confirmed, checked)
	if o := inv.tracker.opened[epicenter]; o != nil {
		inv.traceAppend(o, g.trace)
		switch {
		case !existed && inv.hooks.OutageOpened != nil:
			inv.hooks.OutageOpened(o.status())
		case existed && inv.hooks.OutageUpdated != nil:
			inv.hooks.OutageUpdated(o.status())
		}
	}
}

// disambiguate locates the epicenter of a PoP-level signal group
// (Section 4.3, "Disambiguation of Outage Signals" and "Increasing Signal
// Resolution").
func (inv *investigator) disambiguate(g *popGroup, at time.Time) colo.PoP {
	switch g.pop.Kind {
	case colo.PoPFacility:
		return inv.disambiguateFacility(g, at)
	case colo.PoPIXP:
		return inv.refineIXP(g, at)
	case colo.PoPCity:
		return inv.refineCity(g, at)
	default:
		return g.pop
	}
}

// facilitiesOfAffected returns facilities where at least minShare of the
// group's affected ASes have presence, most-shared first, capped — the
// "facilities where the affected far-end ASes have a presence" candidate
// set of Section 4.3.
func (inv *investigator) facilitiesOfAffected(g *popGroup, minShare float64, cap int) []colo.FacilityID {
	affected := g.affectedASes()
	if len(affected) == 0 {
		return nil
	}
	count := map[colo.FacilityID]int{}
	for _, a := range affected {
		for _, fid := range inv.cmap.FacilitiesOf(a) {
			count[fid]++
		}
	}
	min := int(minShare * float64(len(affected)))
	if min < 2 {
		min = 2
	}
	var out []colo.FacilityID
	for fid, n := range count {
		if n >= min {
			out = append(out, fid)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if count[out[i]] != count[out[j]] {
			return count[out[i]] > count[out[j]]
		}
		return out[i] < out[j]
	})
	if len(out) > cap {
		out = out[:cap]
	}
	return out
}

// probeCandidates runs targeted data-plane measurements against candidate
// epicenters when the control plane cannot converge (Section 4.3: "we
// cannot make an inference and resort to targeted traceroute queries to
// discover the outage source"). A failing facility also takes down the IXP
// ports and city paths it hosts, so coarser candidates confirm alongside
// it: the most specific granularity with exactly one confirmed candidate
// wins; two confirmed candidates of the same granularity stay ambiguous.
func (inv *investigator) probeCandidates(at time.Time, cands []colo.PoP, ch *TraceChapter) colo.PoP {
	if inv.dp == nil {
		return colo.PoP{}
	}
	var tp *TraceProbe
	if ch != nil {
		tp = &TraceProbe{Outcome: "inline", Candidates: append([]colo.PoP(nil), cands...)}
		ch.Probe = tp
	}
	confirmed := map[colo.PoPKind][]colo.PoP{}
	for _, cand := range cands {
		ok, hasData := inv.dp.Confirm(cand, at)
		if tp != nil {
			tp.Results = append(tp.Results, TraceProbeResult{Target: cand, Confirmed: hasData && ok, HasData: hasData})
		}
		if hasData && ok {
			confirmed[cand.Kind] = append(confirmed[cand.Kind], cand)
		}
	}
	pick := func() colo.PoP {
		for _, kind := range []colo.PoPKind{colo.PoPFacility, colo.PoPIXP, colo.PoPCity} {
			switch len(confirmed[kind]) {
			case 0:
				continue
			case 1:
				return confirmed[kind][0]
			default:
				return colo.PoP{} // several peers of one granularity: ambiguous
			}
		}
		return colo.PoP{}
	}
	epi := pick()
	if tp != nil {
		tp.Epicenter = epi
	}
	return epi
}

// affectedFractionWithFarAt computes diverted/stable over the group's
// signal PoP, restricted to paths whose far end is colocated at facility f.
// Each diverted (path, link) pair counts once: a path that oscillates away
// from the PoP several times within one bin records a divert event per
// departure, and double-counting those would inflate the affected fraction
// past the stable baseline it is compared against.
func (inv *investigator) affectedFractionWithFarAt(g *popGroup, f colo.FacilityID) (float64, int) {
	stableTotal, divertedTotal := 0, 0
	for _, set := range inv.view.stableAt(g.pop) {
		for _, ends := range set {
			if ends.far != 0 && inv.cmap.AtFacility(ends.far, f) {
				stableTotal++
			}
		}
	}
	type pathLink struct {
		key  PathKey
		ends popEnd
	}
	seen := make(map[pathLink]bool, g.paths)
	for _, s := range g.signals {
		for _, r := range s.diverted {
			if r.ends.far == 0 || !inv.cmap.AtFacility(r.ends.far, f) {
				continue
			}
			pl := pathLink{key: r.key, ends: r.ends}
			if seen[pl] {
				continue
			}
			seen[pl] = true
			divertedTotal++
		}
	}
	if stableTotal == 0 {
		return 0, 0
	}
	return float64(divertedTotal) / float64(stableTotal), stableTotal
}

// disambiguateFacility implements the near-end-first walk of Section 4.3:
// if the paths with far ends colocated in the signalled facility are
// (almost) all affected, the near-end facility is the epicenter; otherwise
// candidate far-end facilities are examined; otherwise common IXPs.
func (inv *investigator) disambiguateFacility(g *popGroup, at time.Time) colo.PoP {
	f := colo.FacilityID(g.pop.ID)
	if frac, n := inv.affectedFractionWithFarAt(g, f); n > 0 && frac >= inv.cfg.ColocationMargin {
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "near-facility-margin", Chosen: g.pop,
				Outcome: fmt.Sprintf("%.0f%% of %d colocated far-end paths affected (margin %.0f%%): near facility is the epicenter",
					frac*100, n, inv.cfg.ColocationMargin*100)})
		}
		return g.pop
	} else if g.trace != nil {
		g.trace.step(TraceStep{Stage: "near-facility-margin",
			Outcome: fmt.Sprintf("%.0f%% of %d colocated far-end paths affected, below the %.0f%% margin",
				frac*100, n, inv.cfg.ColocationMargin*100)})
	}

	// Candidate facilities of the affected far ends: accept the one that
	// hosts every affected far end and whose colocated paths are all
	// affected.
	candSet := map[colo.FacilityID]int{}
	for far := range g.fars {
		for _, fid := range inv.cmap.FacilitiesOf(far) {
			candSet[fid]++
		}
	}
	var cands []colo.FacilityID
	for fid, n := range candSet {
		if fid != f && n == len(g.fars) && len(g.fars) > 0 {
			cands = append(cands, fid)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	var elim []colo.PoP
	for _, fid := range cands {
		if frac, n := inv.affectedFractionWithFarAt(g, fid); n > 0 && frac >= inv.cfg.ColocationMargin {
			chosen := colo.FacilityPoP(fid)
			if g.trace != nil {
				g.trace.step(TraceStep{Stage: "far-facility-candidates",
					Candidates: facilityPoPs(cands), Eliminated: elim, Chosen: chosen,
					Outcome: fmt.Sprintf("%.0f%% of %d paths colocated at the candidate affected: far-end facility is the epicenter",
						frac*100, n)})
			}
			return chosen
		}
		if g.trace != nil {
			elim = append(elim, colo.FacilityPoP(fid))
		}
	}
	if g.trace != nil && len(cands) > 0 {
		g.trace.step(TraceStep{Stage: "far-facility-candidates",
			Candidates: facilityPoPs(cands), Eliminated: elim,
			Outcome: "no candidate facility hosting every affected far end met the colocation margin"})
	}

	// Partial-outage consistency: a subset of the facility failed, so not
	// all colocated paths diverted — but every diverted path's far end
	// must still be colocated in the facility.
	if inv.aggregateFraction(g) >= 2*inv.cfg.Tfail {
		consistent, total := 0, 0
		for _, s := range g.signals {
			for _, r := range s.diverted {
				if r.ends.far == 0 {
					continue
				}
				total++
				if inv.cmap.AtFacility(r.ends.far, f) {
					consistent++
				}
			}
		}
		if total > 0 && float64(consistent)/float64(total) >= inv.cfg.ColocationMargin {
			if g.trace != nil {
				g.trace.step(TraceStep{Stage: "partial-consistency", Chosen: g.pop,
					Outcome: fmt.Sprintf("%d of %d diverted far ends colocated in the facility: consistent partial outage",
						consistent, total)})
			}
			return g.pop
		}
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "partial-consistency",
				Outcome: fmt.Sprintf("%d of %d diverted far ends colocated in the facility, below the margin",
					consistent, total)})
		}
	}

	// IXP stage: a common IXP of every affected link.
	var commonIXPs []colo.IXPID
	first := true
	for l := range g.links {
		ixs := inv.cmap.CommonIXPs(l.near, l.far)
		if first {
			commonIXPs = ixs
			first = false
			continue
		}
		commonIXPs = intersectIXPs(commonIXPs, ixs)
		if len(commonIXPs) == 0 {
			break
		}
	}
	if len(commonIXPs) == 1 {
		chosen := colo.IXPPoP(commonIXPs[0])
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "common-ixp", Chosen: chosen,
				Outcome: "exactly one IXP is common to every affected link"})
		}
		return chosen
	}
	if g.trace != nil {
		g.trace.step(TraceStep{Stage: "common-ixp",
			Candidates: ixpPoPs(commonIXPs),
			Outcome:    fmt.Sprintf("%d IXPs common to every affected link: no unique exchange", len(commonIXPs))})
	}
	// Unresolved by colocation evidence (common for facilities whose
	// tagged links are tethered transit customers invisible to the map):
	// probe the signalled facility and the affected ASes' shared
	// facilities.
	probes := []colo.PoP{g.pop}
	for _, fid := range inv.facilitiesOfAffected(g, 0.5, 8) {
		if fid != f {
			probes = append(probes, colo.FacilityPoP(fid))
		}
	}
	return inv.resolveByProbe(at, g, probes)
}

// membershipFraction is the share of the affected ASes for which member
// reports true. The colocation margin absorbs member-list gaps in the map.
func membershipFraction(affected []bgp.ASN, member func(bgp.ASN) bool) float64 {
	if len(affected) == 0 {
		return 0
	}
	n := 0
	for _, a := range affected {
		if member(a) {
			n++
		}
	}
	return float64(n) / float64(len(affected))
}

// totalStableAt counts every stable path currently tagged with the PoP.
func (inv *investigator) totalStableAt(pop colo.PoP) int {
	n := 0
	for _, set := range inv.view.stableAt(pop) {
		n += len(set)
	}
	return n
}

// aggregateFraction is the share of the PoP's stable paths the group
// diverted — the bin-level fraction of Section 4.2 before per-AS grouping.
func (inv *investigator) aggregateFraction(g *popGroup) float64 {
	total := inv.totalStableAt(g.pop)
	if total == 0 {
		return 0
	}
	return float64(g.paths) / float64(total)
}

// unaffectedASesAt returns the ASes that appear on stable paths at the
// signal PoP but were not part of the diverted set — the complement Kepler
// compares candidate facilities against.
func (inv *investigator) unaffectedASesAt(g *popGroup) []bgp.ASN {
	set := map[bgp.ASN]bool{}
	for near, paths := range inv.view.stableAt(g.pop) {
		set[near] = true
		for _, ends := range paths {
			if ends.far != 0 {
				set[ends.far] = true
			}
		}
	}
	for a := range g.nears {
		delete(set, a)
	}
	for a := range g.fars {
		delete(set, a)
	}
	out := make([]bgp.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Exclusive-membership scoring: overlapping tenancy (one AS in several
// candidate facilities) makes raw membership fractions indecisive, so
// candidates are compared on their *exclusive* members — ASes present in
// exactly one candidate. The epicenter's exclusive members are nearly all
// affected; other candidates' exclusive members are nearly all fine.
const (
	exclusiveHit  = 0.60 // min affected share of the winner's exclusive members
	exclusiveMiss = 0.30 // max affected share of any other candidate's
)

// exclusiveBest returns the index of the single candidate whose exclusive
// member set is predominantly affected, or -1.
func exclusiveBest(affected []bgp.ASN, memberSets [][]bgp.ASN) int {
	count := map[bgp.ASN]int{}
	for _, set := range memberSets {
		for _, a := range set {
			count[a]++
		}
	}
	affectedSet := map[bgp.ASN]bool{}
	for _, a := range affected {
		affectedSet[a] = true
	}
	winner := -1
	for i, set := range memberSets {
		excl, hit := 0, 0
		for _, a := range set {
			if count[a] != 1 {
				continue
			}
			excl++
			if affectedSet[a] {
				hit++
			}
		}
		if excl == 0 {
			continue
		}
		share := float64(hit) / float64(excl)
		switch {
		case share >= exclusiveHit:
			if winner >= 0 {
				return -1 // two hot candidates: ambiguous
			}
			winner = i
		case share > exclusiveMiss:
			return -1 // lukewarm candidate muddies the picture
		}
	}
	return winner
}

// refineIXP raises the resolution of an IXP-tagged signal: when the
// exclusively-resident members of exactly one fabric facility are affected
// while other facilities' members are fine, the outage is the facility's,
// not the exchange's (Figure 2(b)). A full IXP outage affects members at
// every fabric facility and therefore stays IXP-level.
func (inv *investigator) refineIXP(g *popGroup, at time.Time) colo.PoP {
	ix := colo.IXPID(g.pop.ID)
	ixp, ok := inv.cmap.IXP(ix)
	if !ok || len(ixp.Facilities) < 2 {
		return g.pop
	}
	memberSets := make([][]bgp.ASN, len(ixp.Facilities))
	for i, fid := range ixp.Facilities {
		if f, ok := inv.cmap.Facility(fid); ok {
			memberSets[i] = f.Members
		}
	}
	idx := exclusiveBest(g.affectedASes(), memberSets)
	if idx >= 0 {
		chosen := colo.FacilityPoP(ixp.Facilities[idx])
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "exclusive-membership",
				Candidates: facilityPoPs(ixp.Facilities), Chosen: chosen,
				Outcome: "exclusive members of exactly one fabric facility are predominantly affected"})
		}
		return chosen
	}
	if g.trace != nil {
		g.trace.step(TraceStep{Stage: "exclusive-membership",
			Candidates: facilityPoPs(ixp.Facilities),
			Outcome:    "no single fabric facility's exclusive members explain the signal"})
	}
	// No single facility explains the signal. A genuine exchange-wide
	// outage diverts most of the IXP's monitored paths *and* the far ends
	// of the dead links are the exchange's own members; collateral signals
	// (rerouted paths that merely crossed the exchange) fail one of the
	// two and stay unresolved.
	if inv.aggregateFraction(g) >= 0.5 &&
		inv.farConsistency(g, func(a bgp.ASN) bool { return inv.cmap.AtIXP(a, ix) }) >= inv.cfg.ColocationMargin {
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "ixp-wide", Chosen: g.pop,
				Outcome: fmt.Sprintf("aggregate fraction %.2f with member-consistent far ends: exchange-wide outage",
					inv.aggregateFraction(g))})
		}
		return g.pop
	}
	if g.trace != nil {
		g.trace.step(TraceStep{Stage: "ixp-wide",
			Outcome: fmt.Sprintf("aggregate fraction %.2f / far-end member consistency %.2f below the exchange-wide bar",
				inv.aggregateFraction(g),
				inv.farConsistency(g, func(a bgp.ASN) bool { return inv.cmap.AtIXP(a, ix) }))})
	}
	// Probe the exchange, its fabric facilities, and the facilities where
	// the affected members concentrate — a collateral IXP signal often
	// points at a building that merely sat on the rerouted corridor.
	cands := []colo.PoP{g.pop}
	seenFac := map[colo.FacilityID]bool{}
	for _, fid := range ixp.Facilities {
		cands = append(cands, colo.FacilityPoP(fid))
		seenFac[fid] = true
	}
	for _, fid := range inv.facilitiesOfAffected(g, 0.5, 8) {
		if !seenFac[fid] {
			cands = append(cands, colo.FacilityPoP(fid))
		}
	}
	return inv.resolveByProbe(at, g, cands)
}

// farConsistency is the fraction of diverted far ends satisfying member.
func (inv *investigator) farConsistency(g *popGroup, member func(bgp.ASN) bool) float64 {
	total, hit := 0, 0
	for _, s := range g.signals {
		for _, r := range s.diverted {
			if r.ends.far == 0 {
				continue
			}
			total++
			if member(r.ends.far) {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// refineCity raises the resolution of a city-tagged signal to a facility or
// IXP in that city when the affected/unaffected split isolates exactly one
// (Section 4.3: city signals check facilities first, then IXPs).
func (inv *investigator) refineCity(g *popGroup, at time.Time) colo.PoP {
	city := geo.CityID(g.pop.ID)
	affected := g.affectedASes()
	if len(affected) == 0 {
		return g.pop
	}
	// Candidates are every facility and IXP in the city, compared on
	// exclusive membership: IXP remote peers are exclusive to the IXP,
	// PNI-only tenants are exclusive to their building, so a full IXP
	// outage and a building outage light up different exclusive sets.
	var cands []colo.PoP
	var memberSets [][]bgp.ASN
	for _, fid := range inv.cmap.FacilitiesInCity(city) {
		cands = append(cands, colo.FacilityPoP(fid))
		if f, ok := inv.cmap.Facility(fid); ok {
			memberSets = append(memberSets, f.Members)
		} else {
			memberSets = append(memberSets, nil)
		}
	}
	for _, ix := range inv.cmap.IXPsInCity(city) {
		cands = append(cands, colo.IXPPoP(ix))
		if x, ok := inv.cmap.IXP(ix); ok {
			memberSets = append(memberSets, x.Members)
		} else {
			memberSets = append(memberSets, nil)
		}
	}
	idx := exclusiveBest(affected, memberSets)
	if idx >= 0 {
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "exclusive-membership",
				Candidates: popSliceSorted(cands), Chosen: cands[idx],
				Outcome: "exclusive members of exactly one city infrastructure are predominantly affected"})
		}
		return cands[idx]
	}
	if g.trace != nil {
		g.trace.step(TraceStep{Stage: "exclusive-membership",
			Candidates: popSliceSorted(cands),
			Outcome:    "no single facility or IXP in the city stands out by exclusive membership"})
	}
	// No single infrastructure stands out: a genuine city-wide incident
	// moves most of the city's monitored paths and kills links whose far
	// ends reside in the city; a remote incident that merely rerouted
	// paths away from the city fails the far-end test.
	inCity := func(a bgp.ASN) bool {
		for _, fid := range inv.cmap.FacilitiesInCity(city) {
			if inv.cmap.AtFacility(a, fid) {
				return true
			}
		}
		for _, ix := range inv.cmap.IXPsInCity(city) {
			if inv.cmap.AtIXP(a, ix) {
				return true
			}
		}
		return false
	}
	if inv.aggregateFraction(g) >= 0.5 && inv.farConsistency(g, inCity) >= inv.cfg.ColocationMargin {
		if g.trace != nil {
			g.trace.step(TraceStep{Stage: "city-wide", Chosen: g.pop,
				Outcome: fmt.Sprintf("aggregate fraction %.2f with city-resident far ends: city-wide incident",
					inv.aggregateFraction(g))})
		}
		return g.pop
	}
	if g.trace != nil {
		g.trace.step(TraceStep{Stage: "city-wide",
			Outcome: fmt.Sprintf("aggregate fraction %.2f / far-end city consistency %.2f below the city-wide bar",
				inv.aggregateFraction(g), inv.farConsistency(g, inCity))})
	}
	// Probe candidates hosting at least one affected AS: a genuine
	// building or exchange outage confirms uniquely; collateral signals
	// (paths that merely crossed the city) confirm nowhere.
	affectedSet := map[bgp.ASN]bool{}
	for _, a := range affected {
		affectedSet[a] = true
	}
	var probes []colo.PoP
	for i, cand := range cands {
		hasAffected := false
		for _, m := range memberSets[i] {
			if affectedSet[m] {
				hasAffected = true
				break
			}
		}
		if hasAffected {
			probes = append(probes, cand)
		}
	}
	const maxProbes = 16
	if len(probes) > maxProbes {
		probes = probes[:maxProbes]
	}
	return inv.resolveByProbe(at, g, probes)
}

func intersectIXPs(a, b []colo.IXPID) []colo.IXPID {
	set := map[colo.IXPID]bool{}
	for _, x := range b {
		set[x] = true
	}
	var out []colo.IXPID
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}
