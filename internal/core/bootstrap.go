package core

import (
	"fmt"

	"kepler/internal/mrt"
)

// bootstrapBatchSize is the per-shard dispatch threshold during RIB
// bootstrap. A table dump is one contiguous, bin-boundary-free run of
// announcements, so batches far larger than the streaming engineBatchSize
// amortize channel traffic while every shard worker loads its partition
// concurrently.
const bootstrapBatchSize = 4096

// bootstrapScanStride is how many records the bootstrap loop ingests
// between per-shard dispatch scans, keeping the scan cost off the
// per-record path.
const bootstrapScanStride = 64

// BootstrapRIB bulk-loads a contiguous run of table-dump records — the
// cold-start RIB snapshot that precedes an update stream — through the
// shard fan-out, dispatching large per-shard batches so all shard workers
// build their partition of the path tables in parallel. It is the
// cold-start analogue of the streaming ingest path: the records pass
// through the same fan-out, clock, and barrier machinery, so the engine's
// output (and any later checkpoint) is byte-for-byte identical to feeding
// the same records through Process one at a time. Records must be
// time-ordered table dumps; anything else is rejected before any record is
// ingested. Returns any outages completed at bin boundaries the dump
// crossed (possible when bootstrapping over a redump mid-archive).
func (e *Engine) BootstrapRIB(recs []*mrt.Record) ([]Outage, error) {
	for i, rec := range recs {
		if rec.Kind != mrt.KindRIB {
			return nil, fmt.Errorf("core: BootstrapRIB record %d: kind %v is not a table dump", i, rec.Kind)
		}
	}
	for i, rec := range recs {
		e.stats.Begin()
		e.stats.Records.Add(1)
		e.seen++
		e.inProcess = true
		e.clock.advance(rec.Time, e.closeBin)
		if n := e.fan.Add(rec); n > 0 {
			e.opsSinceBarrier = true
			e.stats.Ops.Add(int64(n))
		}
		e.inProcess = false
		if i%bootstrapScanStride == bootstrapScanStride-1 {
			e.dispatchPending(bootstrapBatchSize)
		}
	}
	// Ship the remainder so the table build keeps overlapping the caller's
	// switch to streaming; the next barrier or full batch would flush it
	// anyway.
	e.dispatchPending(1)
	return e.inv.drainCompleted(), nil
}

// dispatchPending ships every shard's pending ops to its worker when at
// least threshold are queued.
func (e *Engine) dispatchPending(threshold int) {
	for i := range e.shards {
		if p := e.fan.Pending(i); p > 0 && p >= threshold {
			s := e.shards[i]
			s.in <- shardMsg{ops: e.fan.Take(i)}
			e.reclaim(i)
		}
	}
}
