package core

import (
	"fmt"
	"time"

	"kepler/internal/as2org"
	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/metrics"
	"kepler/internal/mrt"
)

// binClock reproduces the pipeline's bin advancement: it yields every bin
// end strictly before t's bin, in order, fast-forwarding across idle gaps.
// Detector and Engine share it so their bin boundaries are identical for
// any record stream.
type binClock struct {
	start    time.Time
	interval time.Duration
}

// advance calls closeBin for each bin that ends at or before t's arrival,
// then leaves start at the bin containing t.
func (c *binClock) advance(t time.Time, closeBin func(end time.Time)) {
	if c.start.IsZero() {
		c.start = t.Truncate(c.interval)
		return
	}
	for !t.Before(c.start.Add(c.interval)) {
		end := c.start.Add(c.interval)
		closeBin(end)
		c.start = end
		// Fast-forward across idle gaps.
		if t.Sub(c.start) > 100*c.interval {
			c.start = t.Truncate(c.interval)
		}
	}
}

// Detector is the sequential Kepler pipeline: one path-state shard driven
// in-process, with the investigator invoked inline at each bin boundary.
// It is the N=1 compatibility path of the sharded Engine and emits
// identical output for any record stream. Records decompose through the
// same single-shard fan-out the Engine uses, consumed synchronously, so
// the two paths cannot drift.
type Detector struct {
	cfg Config
	sh  *pathShard
	inv *investigator

	fan   *bgpstream.Fanout
	clock binClock
	// shards is the one-element slice handed to closeBinOver.
	shards []*pathShard

	// Checkpoint bookkeeping, mirroring Engine: seen counts processed
	// records over the pipeline's life, opsSinceBarrier marks mid-bin
	// per-path state, inBarrier/barrierEnd scope the bin-close window.
	seen            uint64
	inProcess       bool
	inBarrier       bool
	barrierEnd      time.Time
	opsSinceBarrier bool
}

// shardView backs the investigator's state view with the single shard's
// maps directly.
type shardView struct{ sh *pathShard }

func (v shardView) stableAt(pop colo.PoP) map[bgp.ASN]map[PathKey]popEnd { return v.sh.stable[pop] }
func (v shardView) pathsContaining(a bgp.ASN) int                        { return v.sh.pathsContaining[a] }

// New builds a detector. orgs may be nil (operator-level classification
// then degrades to AS-level). The data plane is optional via SetDataPlane.
func New(cfg Config, dict *communities.Dictionary, cmap *colo.Map, orgs *as2org.Table) *Detector {
	sh := newPathShard(cfg, dict, cmap)
	d := &Detector{
		cfg:    cfg,
		sh:     sh,
		inv:    newInvestigator(cfg, cmap, orgs, shardView{sh}),
		fan:    bgpstream.NewFanout(1),
		clock:  binClock{interval: cfg.BinInterval},
		shards: []*pathShard{sh},
	}
	if cfg.FeedSilence > 0 {
		d.inv.feed = bgpstream.NewFeedWatchdog(cfg.FeedSilence)
	}
	return d
}

// SetDataPlane wires the synchronous targeted-measurement backend.
func (d *Detector) SetDataPlane(dp DataPlane) { d.inv.dp = dp }

// SetProber wires the asynchronous probe scheduler (see Engine.SetProber).
// Mutually exclusive with SetDataPlane.
func (d *Detector) SetProber(p Prober) { d.inv.prober = p }

// PendingConfirmations snapshots the signal groups parked behind probe
// campaigns, ascending by campaign id.
func (d *Detector) PendingConfirmations() []PendingConfirmation { return d.inv.pendingStatuses() }

// SetHooks installs lifecycle callbacks (see Hooks). It must be called
// before the first Process.
func (d *Detector) SetHooks(h Hooks) { d.inv.hooks = h }

// SetBinStageStats installs the staged bin-close latency collector (see
// Engine.SetBinStageStats). The sequential detector has no barrier or merge
// phase, so those stages stay zero.
func (d *Detector) SetBinStageStats(s *metrics.BinStageStats) { d.inv.binStage = s }

// Process feeds one record (records must arrive in non-decreasing time
// order, as bgpstream guarantees) and returns any outages that completed.
func (d *Detector) Process(rec *mrt.Record) []Outage {
	// Bin boundary first: close bins that ended before this record.
	// Promotions need no explicit run here: apply promotes up to each
	// op's time, and op-less records leave no observable window before
	// the next op or bin close does it.
	d.seen++
	d.inProcess = true
	d.clock.advance(rec.Time, d.closeBin)
	if d.inv.feed != nil {
		d.inv.feed.Observe(rec)
	}

	if d.fan.Add(rec) > 0 {
		d.opsSinceBarrier = true
		ops := d.fan.Take(0)
		for i := range ops {
			d.sh.apply(&ops[i])
		}
		d.fan.Recycle(0, ops)
	}
	d.inProcess = false
	return d.inv.drainCompleted()
}

// closeBin runs promotions due at the boundary, then the canonical
// bin-close sequence over the single shard.
func (d *Detector) closeBin(end time.Time) {
	d.sh.runPromotions(end)
	d.inBarrier = true
	d.barrierEnd = end
	d.inv.closeBinOver(end, d.shards, d.sh.diverted, nil)
	d.inBarrier = false
	d.opsSinceBarrier = false
}

// Flush closes the current bin and any open outages as of the given time,
// returning all remaining completed outages.
func (d *Detector) Flush(asOf time.Time) []Outage {
	d.clock.advance(asOf.Add(d.cfg.BinInterval), d.closeBin)
	d.inv.finishProbes(asOf)
	d.inv.tracker.closeAll(asOf)
	d.inv.tracker.drainCooling(d.inv)
	return d.inv.drainCompleted()
}

// Checkpoint captures the detector's complete detection state, with
// identical semantics (and identical bytes, for the same record stream) to
// Engine.Checkpoint: valid from inside a BinClosed hook or between Process
// calls while no route ops have applied since the last bin close.
func (d *Detector) Checkpoint() (*Checkpoint, error) {
	records := d.seen
	if d.inProcess {
		records--
	}
	if d.inBarrier {
		return captureCheckpoint(d.barrierEnd, records, d.fan, d.shards, d.inv), nil
	}
	if d.opsSinceBarrier {
		return nil, fmt.Errorf("core: Checkpoint outside a bin barrier with ops in flight; checkpoint from a BinClosed hook")
	}
	return captureCheckpoint(d.clock.start, records, d.fan, d.shards, d.inv), nil
}

// RestoreFrom loads a checkpoint produced by any Engine or Detector; see
// Engine.RestoreFrom. It must be called before the first Process.
func (d *Detector) RestoreFrom(c *Checkpoint) error {
	if d.seen != 0 || !d.clock.start.IsZero() {
		return fmt.Errorf("core: RestoreFrom must precede the first Process")
	}
	if err := restoreCheckpoint(c, d.cfg, d.shards, d.inv, nil); err != nil {
		return err
	}
	d.clock.start = c.BinStart
	d.fan.RestoreSeq(c.OpSeq)
	d.fan.Tracker().Restore(c.Sessions)
	d.seen = c.Records
	return nil
}

// Incidents returns every classified signal so far.
func (d *Detector) Incidents() []Incident { return d.inv.incidents }

// OpenOutages returns the PoPs with ongoing outages.
func (d *Detector) OpenOutages() []colo.PoP { return d.inv.tracker.open() }

// OpenOutageStatuses snapshots every ongoing outage, sorted by epicenter.
func (d *Detector) OpenOutageStatuses() []OutageStatus { return d.inv.tracker.openStatuses() }

// FeedHealth snapshots the feed watchdog as of asOf; see Engine.FeedHealth.
func (d *Detector) FeedHealth(asOf time.Time) (snap bgpstream.FeedSnapshot, ok bool) {
	if d.inv.feed == nil {
		return bgpstream.FeedSnapshot{}, false
	}
	return d.inv.feed.Snapshot(asOf), true
}
