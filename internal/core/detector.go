package core

import (
	"container/heap"
	"sort"
	"time"

	"kepler/internal/as2org"
	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/mrt"
)

// popEnd is one tagged (near, far) AS pair a path crosses at a PoP.
type popEnd struct {
	near, far bgp.ASN
}

// pathState is the tracked state of one monitored path.
type pathState struct {
	// tags maps each currently tagged PoP to its hop ends.
	tags map[colo.PoP]popEnd
	// since records when each PoP was first tagged continuously.
	since map[colo.PoP]time.Time
	// path is the current (deduplicated) AS path; kept so that signal
	// investigation can intersect the old paths of diverted routes and
	// recognize AS-level incidents (Section 4.3).
	path bgp.Path
}

// divertRec is one path leaving a PoP within the current bin.
type divertRec struct {
	key     PathKey
	ends    popEnd
	oldPath bgp.Path
}

// promo schedules a path's promotion into the stable baseline once its tag
// has persisted for the stability window.
type promo struct {
	due   time.Time
	key   PathKey
	pop   colo.PoP
	since time.Time // guards against re-tagging between scheduling and due
}

// promoQueue is a min-heap on due time.
type promoQueue []promo

func (q promoQueue) Len() int           { return len(q) }
func (q promoQueue) Less(i, j int) bool { return q[i].due.Before(q[j].due) }
func (q promoQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *promoQueue) Push(x any)        { *q = append(*q, x.(promo)) }
func (q *promoQueue) Pop() any          { old := *q; n := len(old); p := old[n-1]; *q = old[:n-1]; return p }

// Detector is the Kepler pipeline.
type Detector struct {
	cfg  Config
	dict *communities.Dictionary
	cmap *colo.Map
	orgs *as2org.Table
	dp   DataPlane

	paths map[PathKey]*pathState
	// stable[pop][near] -> set of stable paths with that near-end AS.
	stable map[colo.PoP]map[bgp.ASN]map[PathKey]popEnd

	sessions *bgpstream.SessionTracker
	// pathsOfPeer indexes paths by vantage for session-gap handling.
	pathsOfPeer map[bgp.ASN]map[PathKey]bool
	// pathsContaining counts monitored paths whose AS path traverses each
	// ASN; signal investigation uses it to tell a globally vanishing AS
	// (AS-level incident) from a hub that merely lost one site.
	pathsContaining map[bgp.ASN]int

	binStart time.Time
	diverted map[colo.PoP]map[bgp.ASN][]divertRec // current bin
	promos   promoQueue

	incidents []Incident
	tracker   *outageTracker
	completed []Outage
}

// New builds a detector. orgs may be nil (operator-level classification
// then degrades to AS-level). The data plane is optional via SetDataPlane.
func New(cfg Config, dict *communities.Dictionary, cmap *colo.Map, orgs *as2org.Table) *Detector {
	return &Detector{
		cfg:             cfg,
		dict:            dict,
		cmap:            cmap,
		orgs:            orgs,
		paths:           make(map[PathKey]*pathState),
		stable:          make(map[colo.PoP]map[bgp.ASN]map[PathKey]popEnd),
		sessions:        bgpstream.NewSessionTracker(),
		pathsOfPeer:     make(map[bgp.ASN]map[PathKey]bool),
		pathsContaining: make(map[bgp.ASN]int),
		diverted:        make(map[colo.PoP]map[bgp.ASN][]divertRec),
		tracker:         newOutageTracker(cfg),
	}
}

// SetDataPlane wires the targeted-measurement backend.
func (d *Detector) SetDataPlane(dp DataPlane) { d.dp = dp }

// Process feeds one record (records must arrive in non-decreasing time
// order, as bgpstream guarantees) and returns any outages that completed.
func (d *Detector) Process(rec *mrt.Record) []Outage {
	// Bin boundary first: close bins that ended before this record.
	d.advanceTo(rec.Time)

	switch rec.Kind {
	case mrt.KindState:
		d.sessions.Observe(rec)
		if rec.NewState != mrt.StateEstablished {
			// Feed disruption: drop this peer's paths from the baseline
			// without treating the loss as routing divergence
			// (Section 4.2's state-message handling).
			d.suspendPeer(rec.PeerAS)
		}
	case mrt.KindRIB, mrt.KindUpdate:
		if rec.Update == nil {
			break
		}
		for _, p := range rec.Update.Withdrawn {
			d.withdraw(rec.Time, PathKey{Peer: rec.PeerAS, Prefix: p})
		}
		attrs := rec.Update.Attrs
		for _, p := range rec.Update.Announced {
			if err := bgp.Sanitize(p, attrs.ASPath); err != nil {
				continue
			}
			d.announce(rec.Time, PathKey{Peer: rec.PeerAS, Prefix: p}, attrs.ASPath, attrs.Communities)
		}
	}
	return d.drainCompleted()
}

// Flush closes the current bin and any open outages as of the given time,
// returning all remaining completed outages.
func (d *Detector) Flush(asOf time.Time) []Outage {
	d.advanceTo(asOf.Add(d.cfg.BinInterval))
	d.tracker.closeAll(asOf)
	d.tracker.drainCooling(d)
	return d.drainCompleted()
}

// Incidents returns every classified signal so far.
func (d *Detector) Incidents() []Incident { return d.incidents }

// OpenOutages returns the PoPs with ongoing outages.
func (d *Detector) OpenOutages() []colo.PoP { return d.tracker.open() }

func (d *Detector) drainCompleted() []Outage {
	out := d.completed
	d.completed = nil
	return out
}

// advanceTo closes every bin strictly before t's bin.
func (d *Detector) advanceTo(t time.Time) {
	if d.binStart.IsZero() {
		d.binStart = t.Truncate(d.cfg.BinInterval)
		d.runPromotions(t)
		return
	}
	for !t.Before(d.binStart.Add(d.cfg.BinInterval)) {
		d.runPromotions(d.binStart.Add(d.cfg.BinInterval))
		d.closeBin()
		d.binStart = d.binStart.Add(d.cfg.BinInterval)
		// Fast-forward across idle gaps.
		if t.Sub(d.binStart) > 100*d.cfg.BinInterval {
			d.binStart = t.Truncate(d.cfg.BinInterval)
		}
	}
	d.runPromotions(t)
}

// runPromotions moves paths whose tags survived the stability window into
// the stable baseline.
func (d *Detector) runPromotions(now time.Time) {
	for len(d.promos) > 0 && !d.promos[0].due.After(now) {
		p := heap.Pop(&d.promos).(promo)
		st := d.paths[p.key]
		if st == nil {
			continue
		}
		since, tagged := st.since[p.pop]
		if !tagged || !since.Equal(p.since) {
			continue // re-tagged since scheduling; a newer promo exists
		}
		d.addStable(p.pop, p.key, st.tags[p.pop])
	}
}

// announce updates a path with a new tagged route.
func (d *Detector) announce(at time.Time, key PathKey, path bgp.Path, comms bgp.Communities) {
	hops := d.dict.Annotate(path, comms, d.cmap)
	newTags := make(map[colo.PoP]popEnd, len(hops))
	for _, h := range hops {
		newTags[h.PoP] = popEnd{near: h.Near, far: h.Far}
	}

	st := d.paths[key]
	if st == nil {
		st = &pathState{tags: map[colo.PoP]popEnd{}, since: map[colo.PoP]time.Time{}}
		d.paths[key] = st
		if d.pathsOfPeer[key.Peer] == nil {
			d.pathsOfPeer[key.Peer] = make(map[PathKey]bool)
		}
		d.pathsOfPeer[key.Peer][key] = true
	}

	// PoPs no longer tagged: divert events. A changed community counts as
	// a route change even when the AS path is identical — and vice versa a
	// kept community means no change for that PoP (Section 4.2).
	for pop, ends := range st.tags {
		if _, still := newTags[pop]; !still {
			d.recordDivert(at, key, pop, ends, st.path)
		}
	}
	// Newly tagged PoPs start their stability clock; kept PoPs keep it.
	for pop, ends := range newTags {
		if _, had := st.tags[pop]; !had {
			st.since[pop] = at
			heap.Push(&d.promos, promo{due: at.Add(d.cfg.StableWindow), key: key, pop: pop, since: at})
		}
		if at.Sub(st.since[pop]) >= d.cfg.StableWindow {
			d.addStable(pop, key, ends)
		}
	}
	for pop := range st.since {
		if _, still := newTags[pop]; !still {
			delete(st.since, pop)
		}
	}
	st.tags = newTags
	d.countPath(st.path, -1)
	st.path = path.Dedup()
	d.countPath(st.path, +1)

	// A re-tag may return a diverted path to its baseline PoP.
	d.tracker.noteReturn(at, key, newTags)
}

// withdraw removes a path entirely (explicit withdrawal).
func (d *Detector) withdraw(at time.Time, key PathKey) {
	st := d.paths[key]
	if st == nil {
		return
	}
	for pop, ends := range st.tags {
		d.recordDivert(at, key, pop, ends, st.path)
	}
	d.countPath(st.path, -1)
	delete(d.paths, key)
	if m := d.pathsOfPeer[key.Peer]; m != nil {
		delete(m, key)
	}
}

// suspendPeer silently drops a peer's paths from monitoring state after a
// collector feed disruption.
func (d *Detector) suspendPeer(peer bgp.ASN) {
	for key := range d.pathsOfPeer[peer] {
		st := d.paths[key]
		if st == nil {
			continue
		}
		for pop := range st.tags {
			d.removeStable(pop, key)
		}
		d.countPath(st.path, -1)
		delete(d.paths, key)
	}
	delete(d.pathsOfPeer, peer)
}

// countPath adjusts pathsContaining for every AS on the path.
func (d *Detector) countPath(path bgp.Path, delta int) {
	for _, a := range path {
		d.pathsContaining[a] += delta
		if d.pathsContaining[a] <= 0 {
			delete(d.pathsContaining, a)
		}
	}
}

func (d *Detector) addStable(pop colo.PoP, key PathKey, ends popEnd) {
	byNear := d.stable[pop]
	if byNear == nil {
		byNear = make(map[bgp.ASN]map[PathKey]popEnd)
		d.stable[pop] = byNear
	}
	set := byNear[ends.near]
	if set == nil {
		set = make(map[PathKey]popEnd)
		byNear[ends.near] = set
	}
	set[key] = ends
}

func (d *Detector) removeStable(pop colo.PoP, key PathKey) {
	for near, set := range d.stable[pop] {
		if _, ok := set[key]; ok {
			delete(set, key)
			if len(set) == 0 {
				delete(d.stable[pop], near)
			}
		}
	}
	if len(d.stable[pop]) == 0 {
		delete(d.stable, pop)
	}
}

// recordDivert notes that a stable path left a PoP within the current bin.
// Non-stable paths are transient and ignored.
func (d *Detector) recordDivert(at time.Time, key PathKey, pop colo.PoP, ends popEnd, oldPath bgp.Path) {
	set := d.stable[pop][ends.near]
	if _, stable := set[key]; !stable {
		return
	}
	byNear := d.diverted[pop]
	if byNear == nil {
		byNear = make(map[bgp.ASN][]divertRec)
		d.diverted[pop] = byNear
	}
	byNear[ends.near] = append(byNear[ends.near], divertRec{key: key, ends: ends, oldPath: oldPath})
}

// signal is one (pop, nearAS) outage signal raised at a bin boundary.
type signal struct {
	pop      colo.PoP
	near     bgp.ASN
	diverted []divertRec
	stable   int
}

// closeBin evaluates thresholds, classifies signals and updates outage
// tracking for the bin ending now.
func (d *Detector) closeBin() {
	if len(d.diverted) == 0 {
		d.tracker.tick(d.binStart.Add(d.cfg.BinInterval), d)
		return
	}
	binEnd := d.binStart.Add(d.cfg.BinInterval)

	var signals []signal
	pops := make([]colo.PoP, 0, len(d.diverted))
	for pop := range d.diverted {
		pops = append(pops, pop)
	}
	sort.Slice(pops, func(i, j int) bool {
		if pops[i].Kind != pops[j].Kind {
			return pops[i].Kind < pops[j].Kind
		}
		return pops[i].ID < pops[j].ID
	})
	for _, pop := range pops {
		nears := make([]bgp.ASN, 0, len(d.diverted[pop]))
		for near := range d.diverted[pop] {
			nears = append(nears, near)
		}
		sort.Slice(nears, func(i, j int) bool { return nears[i] < nears[j] })

		if d.cfg.DisablePerASGrouping {
			// Ablation mode: one aggregate fraction per PoP. A partial
			// outage hitting regional ASes drowns under a big AS's
			// unaffected paths — the bias the paper's grouping removes.
			divertedTotal := 0
			for _, near := range nears {
				divertedTotal += len(d.diverted[pop][near])
			}
			total := d.totalStableAt(pop)
			if total == 0 || float64(divertedTotal)/float64(total) <= d.cfg.Tfail {
				continue
			}
			for _, near := range nears {
				recs := d.diverted[pop][near]
				signals = append(signals, signal{pop: pop, near: near, diverted: recs, stable: len(d.stable[pop][near])})
			}
			continue
		}

		for _, near := range nears {
			recs := d.diverted[pop][near]
			stableCount := len(d.stable[pop][near]) // still includes diverted ones
			if stableCount == 0 {
				continue
			}
			frac := float64(len(recs)) / float64(stableCount)
			if frac > d.cfg.Tfail {
				signals = append(signals, signal{pop: pop, near: near, diverted: recs, stable: stableCount})
			}
		}
	}

	if len(signals) > 0 {
		d.investigate(binEnd, signals)
	}

	// Diverted paths leave the stable baseline (Section 4.2: "after each
	// binning interval, we remove the changed paths from the set of
	// stable paths").
	for pop, byNear := range d.diverted {
		for _, recs := range byNear {
			for _, r := range recs {
				d.removeStable(pop, r.key)
			}
		}
	}
	d.diverted = make(map[colo.PoP]map[bgp.ASN][]divertRec)
	d.tracker.tick(binEnd, d)
}
