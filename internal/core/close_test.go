package core

import (
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/mrt"
)

// scenarioRecords renders the deterministic facility-outage scenario of
// TestEngineScenario as a record stream: stable baseline, full divert away
// from F1, restoration 30 minutes later. Flushing an hour after the last
// record yields exactly one completed outage.
func scenarioRecords() []*mrt.Record {
	var recs []*mrt.Record
	announce := func(at time.Time, tagged bool) {
		pfx := 0
		for _, near := range []bgp.ASN{11, 12, 13, 14} {
			for k := 0; k < 3; k++ {
				far := bgp.ASN(21 + (pfx % 4))
				prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
				if tagged {
					comm := bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
					recs = append(recs, mkUpdate(at, near, prefix, bgp.Path{near, far}, comm))
				} else {
					recs = append(recs, mkUpdate(at, near, prefix, bgp.Path{near, 99, far}, nil))
				}
				pfx++
			}
		}
	}
	announce(tBase, true)
	recs = append(recs, mkUpdate(tBase.Add(49*time.Hour), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
	failAt := tBase.Add(50 * time.Hour)
	announce(failAt, false)
	recs = append(recs, mkUpdate(failAt.Add(90*time.Second), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
	announce(failAt.Add(30*time.Minute), true)
	return recs
}

// scenarioFlushAt is the flush instant that completes the scenario outage.
func scenarioFlushAt() time.Time {
	return tBase.Add(50*time.Hour + 30*time.Minute + time.Hour)
}

// TestEngineCloseIdempotent closes the engine repeatedly, from multiple
// goroutines, and racing Flush — the daemon shutdown path. Every
// combination must be panic-free under -race, and a Flush that wins the
// race must still produce the reference output.
func TestEngineCloseIdempotent(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	recs := scenarioRecords()

	// Reference: the sequential detector over the same stream.
	want, _ := runDetector(t, recs, nil)
	if len(want) != 1 {
		t.Fatalf("reference produced %d outages, want 1", len(want))
	}

	eng := NewEngine(DefaultConfig(), dict, cmap, nil, 4)
	var outs []Outage
	for _, r := range recs {
		outs = append(outs, eng.Process(r)...)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			eng.Close()
		}()
		go func() {
			defer wg.Done()
			got := eng.Flush(scenarioFlushAt())
			mu.Lock()
			outs = append(outs, got...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	eng.Close() // idempotent after the dust settles

	// Close may win the race, degrading every Flush to a drain (no outages);
	// if any Flush ran first, the drained set must match the reference
	// exactly once — never duplicated by the later Flushes.
	if len(outs) > 0 && !reflect.DeepEqual(outs, want) {
		t.Fatalf("raced flush diverged:\n got:  %+v\n want: %+v", outs, want)
	}
}

// TestEngineFlushAfterClose pins the degraded-Flush contract: after Close,
// Flush returns promptly (no send on closed shard channels) with whatever
// had already completed.
func TestEngineFlushAfterClose(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	eng := NewEngine(DefaultConfig(), dict, cmap, nil, 2)
	recs := scenarioRecords()
	for _, r := range recs {
		eng.Process(r)
	}
	eng.Close()
	eng.Close()
	done := make(chan []Outage, 1)
	go func() { done <- eng.Flush(scenarioFlushAt()) }()
	select {
	case got := <-done:
		if len(got) != 0 {
			t.Fatalf("Flush after Close completed new outages: %+v", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush after Close hung")
	}
}

// TestEngineHooks drives the deterministic outage scenario and verifies the
// lifecycle callbacks: resolved events equal the drained output, the outage
// was opened before it resolved, and incident callbacks mirror Incidents().
func TestEngineHooks(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	recs := scenarioRecords()

	eng := NewEngine(DefaultConfig(), dict, cmap, nil, 3)
	defer eng.Close()

	var opened, updated []OutageStatus
	var resolved []Outage
	var incidents []Incident
	var bins int
	eng.SetHooks(Hooks{
		OutageOpened:       func(s OutageStatus) { opened = append(opened, s) },
		OutageUpdated:      func(s OutageStatus) { updated = append(updated, s) },
		OutageResolved:     func(o Outage) { resolved = append(resolved, o) },
		IncidentClassified: func(inc Incident) { incidents = append(incidents, inc) },
		BinClosed:          func(time.Time) { bins++ },
	})

	var outs []Outage
	for _, r := range recs {
		outs = append(outs, eng.Process(r)...)
	}
	outs = append(outs, eng.Flush(scenarioFlushAt())...)

	if len(outs) != 1 {
		t.Fatalf("outages = %+v, want exactly one", outs)
	}
	if !reflect.DeepEqual(resolved, outs) {
		t.Errorf("resolved hook diverges from drained outages: %+v vs %+v", resolved, outs)
	}
	if !reflect.DeepEqual(incidents, eng.Incidents()) {
		t.Errorf("incident hook diverges from Incidents(): %d vs %d", len(incidents), len(eng.Incidents()))
	}
	if bins == 0 {
		t.Error("BinClosed never fired")
	}
	if len(opened) != 1 {
		t.Fatalf("opened = %+v, want exactly one", opened)
	}
	st := opened[0]
	if st.PoP.ID != uint32(fid) {
		t.Errorf("opened epicenter = %v, want facility %d", st.PoP, fid)
	}
	if st.WaitingPaths != 12 || len(st.AffectedASes) == 0 {
		t.Errorf("opened status = %+v, want 12 waiting paths", st)
	}
	for _, s := range updated {
		if s.PoP != st.PoP {
			t.Errorf("update for %v, only %v was opened", s.PoP, st.PoP)
		}
		if s.LastSignal.Before(st.LastSignal) {
			t.Errorf("update signal time went backwards: %v < %v", s.LastSignal, st.LastSignal)
		}
	}
	if resolved[0].PoP != st.PoP {
		t.Errorf("resolved %v, opened %v", resolved[0].PoP, st.PoP)
	}
}

// TestDetectorHooksMatchEngine replays one stream through both pipelines
// with hooks attached: the callback sequences must agree, like the outputs.
func TestDetectorHooksMatchEngine(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	recs := scenarioRecords()

	type seq struct {
		opened, updated []OutageStatus
		resolved        []Outage
		incidents       []Incident
	}
	collect := func(set func(Hooks), run func()) seq {
		var s seq
		set(Hooks{
			OutageOpened:       func(st OutageStatus) { s.opened = append(s.opened, st) },
			OutageUpdated:      func(st OutageStatus) { s.updated = append(s.updated, st) },
			OutageResolved:     func(o Outage) { s.resolved = append(s.resolved, o) },
			IncidentClassified: func(i Incident) { s.incidents = append(s.incidents, i) },
		})
		run()
		return s
	}

	det := New(DefaultConfig(), dict, cmap, nil)
	dSeq := collect(det.SetHooks, func() {
		for _, r := range recs {
			det.Process(r)
		}
		det.Flush(scenarioFlushAt())
	})

	eng := NewEngine(DefaultConfig(), dict, cmap, nil, 4)
	defer eng.Close()
	eSeq := collect(eng.SetHooks, func() {
		for _, r := range recs {
			eng.Process(r)
		}
		eng.Flush(scenarioFlushAt())
	})

	if !reflect.DeepEqual(dSeq, eSeq) {
		t.Errorf("hook sequences diverge:\n detector: %+v\n engine:   %+v", dSeq, eSeq)
	}
	if len(dSeq.resolved) == 0 || len(dSeq.opened) == 0 {
		t.Fatal("scenario raised no hook traffic; comparison vacuous")
	}
}
