package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"kepler/internal/mrt"
)

// runEngineInvest replays the stream through a sharded engine with the
// parallel bin-close investigator enabled at the given worker count.
func runEngineInvest(t *testing.T, recs []*mrt.Record, dp DataPlane, shards, workers int) ([]Outage, []Incident) {
	t.Helper()
	dict, cmap, _ := microWorld(t)
	cfg := DefaultConfig()
	cfg.InvestWorkers = workers
	e := NewEngine(cfg, dict, cmap, nil, shards)
	defer e.Close()
	if dp != nil {
		e.SetDataPlane(dp)
	}
	var outs []Outage
	for _, r := range recs {
		outs = append(outs, e.Process(r)...)
	}
	outs = append(outs, e.Flush(recs[len(recs)-1].Time)...)
	return outs, e.Incidents()
}

// TestParallelInvestigatorMatchesDetector is the parallel investigator's
// correctness contract: classifying the per-PoP signal groups across a
// worker pool must leave the emitted outages and incidents byte-for-byte
// identical to the sequential detector, at any worker count. Workers <= 1
// exercises the inline path through the same restructured code.
func TestParallelInvestigatorMatchesDetector(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		recs := genStream(seed, 4000)
		wantOuts, wantIncs := runDetector(t, recs, nil)
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				gotOuts, gotIncs := runEngineInvest(t, recs, nil, 4, workers)
				if !reflect.DeepEqual(gotOuts, wantOuts) {
					t.Errorf("outages diverge:\n parallel:  %+v\n detector:  %+v", gotOuts, wantOuts)
				}
				if !reflect.DeepEqual(gotIncs, wantIncs) {
					t.Errorf("incidents diverge:\n parallel:  %+v\n detector:  %+v", gotIncs, wantIncs)
				}
			})
		}
	}
}

// TestParallelInvestigatorOnDetector pins that the worker pool is a pure
// investigator property, not an engine one: the sequential detector with
// InvestWorkers set emits exactly its single-threaded output.
func TestParallelInvestigatorOnDetector(t *testing.T) {
	recs := genStream(2, 4000)
	wantOuts, wantIncs := runDetector(t, recs, nil)
	dict, cmap, _ := microWorld(t)
	cfg := DefaultConfig()
	cfg.InvestWorkers = 8
	d := New(cfg, dict, cmap, nil)
	var outs []Outage
	for _, r := range recs {
		outs = append(outs, d.Process(r)...)
	}
	outs = append(outs, d.Flush(recs[len(recs)-1].Time)...)
	if !reflect.DeepEqual(outs, wantOuts) {
		t.Errorf("outages diverge with 8 investigation workers")
	}
	if !reflect.DeepEqual(d.Incidents(), wantIncs) {
		t.Errorf("incidents diverge with 8 investigation workers")
	}
}

// TestParallelInvestigatorWithDataPlane pins the probe discipline under
// parallel classification: data-plane confirmations still happen serially,
// in deterministic sorted group order, issuing exactly the probes the
// sequential detector issues. The countingDP budget model is order- and
// count-sensitive, so a drifted merge order fails loudly.
func TestParallelInvestigatorWithDataPlane(t *testing.T) {
	recs := genStream(7, 4000)
	seqDP := &countingDP{}
	wantOuts, wantIncs := runDetector(t, recs, seqDP)
	for _, workers := range []int{2, 8} {
		dp := &countingDP{}
		gotOuts, gotIncs := runEngineInvest(t, recs, dp, 4, workers)
		if !reflect.DeepEqual(gotOuts, wantOuts) {
			t.Errorf("workers=%d: outages diverge", workers)
		}
		if !reflect.DeepEqual(gotIncs, wantIncs) {
			t.Errorf("workers=%d: incidents diverge", workers)
		}
		if dp.calls != seqDP.calls {
			t.Errorf("workers=%d: data-plane probes = %d, detector issued %d", workers, dp.calls, seqDP.calls)
		}
	}
}

// ribLead splits a genStream into its leading same-instant baseline burst
// re-kinded as table-dump records plus the live update suffix — the shape
// of a real archive: RIB snapshot first, then the stream.
func ribLead(recs []*mrt.Record) (rib, updates []*mrt.Record) {
	n := 0
	for n < len(recs) && recs[n].Time.Equal(recs[0].Time) {
		n++
	}
	rib = make([]*mrt.Record, n)
	for i, r := range recs[:n] {
		cp := *r
		cp.Kind = mrt.KindRIB
		rib[i] = &cp
	}
	return rib, recs[n:]
}

// TestBootstrapRIBMatchesProcess is the bulk-load correctness contract:
// feeding the leading table dump through BootstrapRIB and then streaming
// the updates must emit exactly what one-at-a-time Process emits over the
// identical record sequence — which in turn matches the sequential
// detector.
func TestBootstrapRIBMatchesProcess(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		recs := genStream(seed, 3000)
		rib, updates := ribLead(recs)
		if len(rib) == 0 || len(updates) == 0 {
			t.Fatalf("seed=%d: degenerate split rib=%d updates=%d", seed, len(rib), len(updates))
		}
		full := append(append([]*mrt.Record(nil), rib...), updates...)
		wantOuts, wantIncs := runDetector(t, full, nil)

		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				dict, cmap, _ := microWorld(t)
				e := NewEngine(DefaultConfig(), dict, cmap, nil, shards)
				defer e.Close()
				outs, err := e.BootstrapRIB(rib)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range updates {
					outs = append(outs, e.Process(r)...)
				}
				outs = append(outs, e.Flush(updates[len(updates)-1].Time)...)
				if !reflect.DeepEqual(outs, wantOuts) {
					t.Errorf("outages diverge:\n bootstrap: %+v\n detector:  %+v", outs, wantOuts)
				}
				if incs := e.Incidents(); !reflect.DeepEqual(incs, wantIncs) {
					t.Errorf("incidents diverge:\n bootstrap: %+v\n detector:  %+v", incs, wantIncs)
				}
			})
		}
	}
}

// TestBootstrapRIBRejectsNonRIB pins the validation contract: a stream
// record in the dump rejects the whole call before anything is ingested.
func TestBootstrapRIBRejectsNonRIB(t *testing.T) {
	recs := genStream(1, 200)
	rib, updates := ribLead(recs)
	dict, cmap, _ := microWorld(t)
	e := NewEngine(DefaultConfig(), dict, cmap, nil, 4)
	defer e.Close()
	if _, err := e.BootstrapRIB(append(rib, updates[0])); err == nil {
		t.Fatal("BootstrapRIB accepted a non-RIB record")
	}
	if got := e.Stats().Records; got != 0 {
		t.Fatalf("rejected bootstrap ingested %d records, want 0", got)
	}
	// The engine must remain fully usable after the rejection.
	if _, err := e.BootstrapRIB(rib); err != nil {
		t.Fatalf("clean bootstrap after rejection: %v", err)
	}
}

// TestCheckpointRoundTripPooledState drives the pooled path-state
// representation through checkpoint, restore and further churn: after a
// restore (which builds states fresh, bypassing the free lists) and
// continued ingestion (which fills and drains them), every checkpoint taken
// at a common bin barrier must be byte-identical to the uninterrupted
// run's. Recycled slabs leaking stale tags or paths into the encoding
// would diverge here.
func TestCheckpointRoundTripPooledState(t *testing.T) {
	recs := genStream(5, 4000)
	cut := len(recs) / 2
	enc := checkpointEveryBin(t, recs, cut, 4, nil, nil)
	c, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	dict, cmap, _ := microWorld(t)

	// Uninterrupted run: the reference encoding at every bin barrier.
	full := map[time.Time][]byte{}
	e1 := NewEngine(DefaultConfig(), dict, cmap, nil, 4)
	e1.SetHooks(Hooks{BinClosed: func(end time.Time) {
		cc, err := e1.Checkpoint()
		if err != nil {
			t.Errorf("reference checkpoint at %v: %v", end, err)
			return
		}
		b, err := cc.Encode()
		if err != nil {
			t.Errorf("reference encode at %v: %v", end, err)
			return
		}
		full[end] = b
	}})
	for _, r := range recs {
		e1.Process(r)
	}
	e1.Close()

	// Restored run over the suffix, checkpointing at every barrier.
	e2 := NewEngine(DefaultConfig(), dict, cmap, nil, 4)
	defer e2.Close()
	if err := e2.RestoreFrom(c); err != nil {
		t.Fatal(err)
	}
	matched := 0
	e2.SetHooks(Hooks{BinClosed: func(end time.Time) {
		cc, err := e2.Checkpoint()
		if err != nil {
			t.Errorf("restored checkpoint at %v: %v", end, err)
			return
		}
		b, err := cc.Encode()
		if err != nil {
			t.Errorf("restored encode at %v: %v", end, err)
			return
		}
		want, ok := full[end]
		if !ok {
			return
		}
		matched++
		if !bytes.Equal(b, want) {
			t.Errorf("checkpoint at %v diverges after restore: %d bytes vs reference %d", end, len(b), len(want))
		}
	}})
	for _, r := range recs[c.Records:] {
		e2.Process(r)
	}
	if matched == 0 {
		t.Fatal("no common bin barriers compared")
	}
}
