package core

import (
	"net/netip"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/geo"
	"kepler/internal/mrt"
)

// microWorld builds a minimal hand-wired dictionary and colocation map:
// facility F1 hosts near-end ASes 11,12,13,14 and far-end ASes 21,22,23,24;
// each near AS tags its F1 ingress with <asn>:51001.
func microWorld(t *testing.T) (*communities.Dictionary, *colo.Map, colo.FacilityID) {
	t.Helper()
	b := colo.NewBuilder(geo.DefaultWorld())
	addr := colo.Address{Street: "1 Test Way", Postcode: "T1", Country: "GB"}
	b.AddFacility(colo.FacilityRecord{
		Source: "test", Name: "Test Facility", Addr: addr, CityHint: "London",
		Members: []bgp.ASN{11, 12, 13, 14, 21, 22, 23, 24},
	})
	// Second facility for far ends, to exercise disambiguation negatives.
	b.AddFacility(colo.FacilityRecord{
		Source: "test", Name: "Other Facility",
		Addr:     colo.Address{Street: "2 Test Way", Postcode: "T2", Country: "GB"},
		CityHint: "London",
		Members:  []bgp.ASN{21, 22, 23, 24},
	})
	cmap := b.Build()
	fid, ok := cmap.FacilityByAddress(addr)
	if !ok {
		t.Fatal("facility missing")
	}
	dict := communities.New()
	for _, asn := range []bgp.ASN{11, 12, 13, 14} {
		dict.Add(communities.Entry{
			Community: bgp.MakeCommunity(uint16(asn), 51001),
			ASN:       asn,
			PoP:       colo.FacilityPoP(fid),
			Label:     "Test Facility",
			Source:    "test",
		})
	}
	return dict, cmap, fid
}

var tBase = time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)

// mkUpdate builds an announcement record from vantage `peer` with the given
// AS path and communities.
func mkUpdate(at time.Time, peer bgp.ASN, prefix string, path bgp.Path, comms bgp.Communities) *mrt.Record {
	return &mrt.Record{
		Time: at, Kind: mrt.KindUpdate, Collector: "rrc00", PeerAS: peer,
		Update: &bgp.Update{
			Announced: []netip.Prefix{netip.MustParsePrefix(prefix)},
			Attrs: bgp.Attributes{
				ASPath:      path,
				NextHop:     netip.MustParseAddr("192.0.2.1"),
				Communities: comms,
			},
		},
	}
}

func mkWithdraw(at time.Time, peer bgp.ASN, prefix string) *mrt.Record {
	return &mrt.Record{
		Time: at, Kind: mrt.KindUpdate, Collector: "rrc00", PeerAS: peer,
		Update: &bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix(prefix)}},
	}
}

// seedStable announces, for each near AS 11..14, nPer paths tagged with F1
// toward distinct far ASes 21..24, then advances past the stability window.
func seedStable(t *testing.T, d *Detector, nPer int) time.Time {
	t.Helper()
	at := tBase
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < nPer; k++ {
			far := bgp.ASN(21 + (pfx % 4))
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			comm := bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
			d.Process(mkUpdate(at, near, prefix, bgp.Path{near, far}, comm))
			pfx++
		}
	}
	// Cross the stability window with a keepalive-ish no-op update.
	at = tBase.Add(49 * time.Hour)
	d.Process(mkUpdate(at, 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
	return at
}

func TestStablePromotionAndSignal(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	at := seedStable(t, d, 3)

	// All near ASes divert simultaneously: re-announce every path with a
	// path avoiding F1 (community gone).
	at = at.Add(time.Hour)
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < 3; k++ {
			far := bgp.ASN(21 + (pfx % 4))
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			d.Process(mkUpdate(at, near, prefix, bgp.Path{near, 99, far}, nil))
			pfx++
		}
	}
	// Push time past the bin to trigger investigation.
	d.Process(mkUpdate(at.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

	incidents := d.Incidents()
	if len(incidents) == 0 {
		t.Fatal("no incidents classified")
	}
	found := false
	for _, inc := range incidents {
		if inc.Kind == IncidentPoP && inc.PoP == colo.FacilityPoP(fid) {
			found = true
			if len(inc.AffectedASes) < 6 {
				t.Errorf("affected ASes = %v", inc.AffectedASes)
			}
		}
	}
	if !found {
		t.Fatalf("no PoP-level incident at facility %d: %+v", fid, incidents)
	}
	if open := d.OpenOutages(); len(open) != 1 {
		t.Fatalf("open outages = %v", open)
	}
}

func TestOutageRestorationAndDuration(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	at := seedStable(t, d, 3)

	failAt := at.Add(time.Hour)
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < 3; k++ {
			far := bgp.ASN(21 + (pfx % 4))
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			d.Process(mkUpdate(failAt, near, prefix, bgp.Path{near, 99, far}, nil))
			pfx++
		}
	}
	d.Process(mkUpdate(failAt.Add(90*time.Second), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

	// Restore 30 minutes later: paths re-tag F1.
	restoreAt := failAt.Add(30 * time.Minute)
	pfx = 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < 3; k++ {
			far := bgp.ASN(21 + (pfx % 4))
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			comm := bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
			d.Process(mkUpdate(restoreAt, near, prefix, bgp.Path{near, far}, comm))
			pfx++
		}
	}
	outages := d.Flush(restoreAt.Add(time.Hour))
	if len(outages) != 1 {
		t.Fatalf("outages = %+v", outages)
	}
	o := outages[0]
	if o.PoP != colo.FacilityPoP(fid) {
		t.Errorf("epicenter = %v", o.PoP)
	}
	dur := o.Duration()
	if dur < 25*time.Minute || dur > 40*time.Minute {
		t.Errorf("duration = %v, want ~30m", dur)
	}
	if o.DivertedPaths != 12 {
		t.Errorf("diverted paths = %d, want 12", o.DivertedPaths)
	}
}

func TestBelowThresholdNoSignal(t *testing.T) {
	cfg := DefaultConfig()
	dict, cmap, _ := microWorld(t)
	d := New(cfg, dict, cmap, nil)
	at := seedStable(t, d, 20) // 20 paths per near AS

	// Divert only 1 of 20 paths per AS: 5% < Tfail=10%.
	at = at.Add(time.Hour)
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		far := bgp.ASN(21 + (pfx % 4))
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
		d.Process(mkUpdate(at, near, prefix, bgp.Path{near, 99, far}, nil))
		pfx += 20
	}
	d.Process(mkUpdate(at.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
	if len(d.Incidents()) != 0 {
		t.Errorf("sub-threshold divergence raised incidents: %+v", d.Incidents())
	}
}

func TestLinkLevelClassification(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	at := seedStable(t, d, 3)

	// Only one near-end AS diverts (AS11, all its paths): a single AS pair
	// set — too few affected ASes for PoP investigation.
	at = at.Add(time.Hour)
	for k := 0; k < 3; k++ {
		far := bgp.ASN(21 + (k % 4))
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, 0, byte(k), 0}), 24).String()
		d.Process(mkUpdate(at, 11, prefix, bgp.Path{11, 99, far}, nil))
	}
	d.Process(mkUpdate(at.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

	incs := d.Incidents()
	if len(incs) == 0 {
		t.Fatal("no incidents")
	}
	for _, inc := range incs {
		if inc.Kind == IncidentPoP {
			t.Errorf("single-AS divergence misclassified as PoP-level: %+v", inc)
		}
	}
}

func TestWithdrawalCountsAsDivert(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	at := seedStable(t, d, 3)

	at = at.Add(time.Hour)
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < 3; k++ {
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			d.Process(mkWithdraw(at, near, prefix))
			pfx++
		}
	}
	d.Process(mkUpdate(at.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

	found := false
	for _, inc := range d.Incidents() {
		if inc.Kind == IncidentPoP && inc.PoP == colo.FacilityPoP(fid) {
			found = true
		}
	}
	if !found {
		t.Fatalf("withdrawals did not raise a PoP incident: %+v", d.Incidents())
	}
}

func TestSessionGapSuppressesSignals(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	at := seedStable(t, d, 3)

	// Collector session to every near AS drops — feed disruption, not
	// outage. No incidents may be raised even though paths vanish.
	at = at.Add(time.Hour)
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		d.Process(&mrt.Record{
			Time: at, Kind: mrt.KindState, Collector: "rrc00", PeerAS: near,
			OldState: mrt.StateEstablished, NewState: mrt.StateIdle,
		})
	}
	d.Process(mkUpdate(at.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
	if len(d.Incidents()) != 0 {
		t.Errorf("session gap raised incidents: %+v", d.Incidents())
	}
}

func TestCommunityChangeWithoutPathChangeIsDivert(t *testing.T) {
	// Section 4.2: "we consider changes to the community tag as route
	// change even if the AS path remains unchanged."
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	at := seedStable(t, d, 3)

	at = at.Add(time.Hour)
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < 3; k++ {
			far := bgp.ASN(21 + (pfx % 4))
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			// Same AS path, community replaced by an unknown one.
			comm := bgp.Communities{bgp.MakeCommunity(uint16(near), 59999)}
			d.Process(mkUpdate(at, near, prefix, bgp.Path{near, far}, comm))
			pfx++
		}
	}
	d.Process(mkUpdate(at.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

	found := false
	for _, inc := range d.Incidents() {
		if inc.Kind == IncidentPoP && inc.PoP == colo.FacilityPoP(fid) {
			found = true
		}
	}
	if !found {
		t.Fatalf("implicit withdrawal not detected: %+v", d.Incidents())
	}
}

func TestOscillationMerging(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	at := seedStable(t, d, 3)

	fail := func(at time.Time) {
		pfx := 0
		for _, near := range []bgp.ASN{11, 12, 13, 14} {
			for k := 0; k < 3; k++ {
				far := bgp.ASN(21 + (pfx % 4))
				prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
				d.Process(mkUpdate(at, near, prefix, bgp.Path{near, 99, far}, nil))
				pfx++
			}
		}
	}
	restore := func(at time.Time) {
		pfx := 0
		for _, near := range []bgp.ASN{11, 12, 13, 14} {
			for k := 0; k < 3; k++ {
				far := bgp.ASN(21 + (pfx % 4))
				prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
				comm := bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
				d.Process(mkUpdate(at, near, prefix, bgp.Path{near, far}, comm))
				pfx++
			}
		}
	}

	// First dip. Paths must re-stabilize before the second dip can be
	// seen, so the second dip comes after another stability window — but
	// within the oscillation gap? No: stabilization takes 48h > 12h gap.
	// Instead: first dip, restore after 10 min (paths return, outage
	// closes), second dip of the *same still-stable* paths 1 h later —
	// returned paths re-enter the baseline immediately because their
	// stability clock rolls from the original tagging... it does not; the
	// clock resets. The merge is therefore exercised through path returns
	// *without* re-divergence: dip, partial restore, dip again via
	// withdrawal of the returned announcements within the same baseline.
	t0 := at.Add(time.Hour)
	fail(t0)
	d.Process(mkUpdate(t0.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
	restore(t0.Add(10 * time.Minute))
	d.Process(mkUpdate(t0.Add(13*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

	outs := d.Flush(t0.Add(20 * time.Hour))
	if len(outs) != 1 {
		t.Fatalf("outages = %+v", outs)
	}
	if outs[0].PoP != colo.FacilityPoP(fid) {
		t.Errorf("epicenter = %v", outs[0].PoP)
	}
}

type stubDataPlane struct {
	confirm bool
	hasData bool
	calls   int
}

func (s *stubDataPlane) Confirm(colo.PoP, time.Time) (bool, bool) {
	s.calls++
	return s.confirm, s.hasData
}

func TestDataPlaneFalsePositiveSuppression(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	dp := &stubDataPlane{confirm: false, hasData: true}
	d.SetDataPlane(dp)
	at := seedStable(t, d, 3)

	at = at.Add(time.Hour)
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < 3; k++ {
			far := bgp.ASN(21 + (pfx % 4))
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			d.Process(mkUpdate(at, near, prefix, bgp.Path{near, 99, far}, nil))
			pfx++
		}
	}
	d.Process(mkUpdate(at.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

	if dp.calls == 0 {
		t.Fatal("data plane never consulted")
	}
	if outs := d.Flush(at.Add(24 * time.Hour)); len(outs) != 0 {
		t.Errorf("refuted outage still emitted: %+v", outs)
	}
}

func TestDataPlaneConfirmation(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	d.SetDataPlane(&stubDataPlane{confirm: true, hasData: true})
	at := seedStable(t, d, 3)

	at = at.Add(time.Hour)
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < 3; k++ {
			far := bgp.ASN(21 + (pfx % 4))
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			d.Process(mkUpdate(at, near, prefix, bgp.Path{near, 99, far}, nil))
			pfx++
		}
	}
	outs := d.Flush(at.Add(24 * time.Hour))
	if len(outs) != 1 || !outs[0].Confirmed || !outs[0].DataPlaneChecked {
		t.Fatalf("outs = %+v", outs)
	}
	if outs[0].PoP != colo.FacilityPoP(fid) {
		t.Errorf("epicenter = %v", outs[0].PoP)
	}
}

func TestIncidentKindString(t *testing.T) {
	for _, k := range []IncidentKind{IncidentLink, IncidentAS, IncidentOperator, IncidentPoP} {
		if k.String() == "unknown" {
			t.Errorf("kind %d renders unknown", k)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Tfail != 0.10 {
		t.Errorf("Tfail = %v", cfg.Tfail)
	}
	if cfg.BinInterval != 60*time.Second {
		t.Errorf("BinInterval = %v", cfg.BinInterval)
	}
	if cfg.StableWindow != 48*time.Hour {
		t.Errorf("StableWindow = %v", cfg.StableWindow)
	}
	if cfg.ColocationMargin != 0.95 {
		t.Errorf("ColocationMargin = %v", cfg.ColocationMargin)
	}
	if cfg.RestoreFraction != 0.50 {
		t.Errorf("RestoreFraction = %v", cfg.RestoreFraction)
	}
	if cfg.OscillationGap != 12*time.Hour {
		t.Errorf("OscillationGap = %v", cfg.OscillationGap)
	}
}
