package core

import (
	"sort"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
)

// Prober is the asynchronous data-plane interface (Section 4.3/4.4 under
// the measurement budgets public platforms impose): instead of answering a
// point-in-time Confirm call inline, the investigator submits probe
// campaigns at bin close and collects their verdicts at later bin closes.
// A signal group whose epicenter awaits probing is parked as a pending
// confirmation in the meantime (see PendingConfirmation) so bin closes stay
// fast and deterministic while measurements run concurrently.
//
// Submit and Collect are both called from the ingestion goroutine at bin
// boundaries; implementations run their measurements on their own
// goroutines in between. Collect must return verdicts in ascending
// request-ID order — the investigator's promotion order derives from it.
type Prober interface {
	// Submit schedules a probe campaign. The prober owns execution order,
	// deduplication and budget enforcement.
	Submit(ProbeRequest)
	// Collect returns the verdicts of campaigns that completed, sorted by
	// request ID. binEnd is the closing bin boundary (stream time);
	// deterministic implementations use it to settle measurement budgets.
	Collect(binEnd time.Time) []ProbeVerdict
}

// ProbeRequest is one campaign: the candidate PoPs to measure on behalf of
// a parked signal group.
type ProbeRequest struct {
	// ID is the investigator-assigned pending-confirmation id, unique and
	// ascending within one pipeline.
	ID uint64
	// At is the closing time of the bin that raised the signal; probes
	// query the data plane as of this instant.
	At time.Time
	// SignalPoP is the PoP the signal group was raised at.
	SignalPoP colo.PoP
	// Epicenter is the control-plane inferred epicenter for confirmation
	// campaigns; zero when the campaign disambiguates among Candidates.
	Epicenter colo.PoP
	// Candidates are the PoPs to probe, most specific first.
	Candidates []colo.PoP
}

// ProbeResult is the measured outcome for one candidate target.
type ProbeResult struct {
	Target colo.PoP
	// Confirmed reports that the data plane corroborates an outage at the
	// target. Only meaningful when HasData is set.
	Confirmed bool
	// HasData is false when no measurement was possible (budget exhausted,
	// no baseline pairs, backend loss); the control-plane inference then
	// stands unvalidated, exactly as in the synchronous DataPlane path.
	HasData bool
}

// ProbeVerdict is a completed campaign: one result per requested candidate,
// in request order.
type ProbeVerdict struct {
	ID      uint64
	Results []ProbeResult
}

// PendingConfirmation is a point-in-time snapshot of one parked signal
// group: an outage candidate whose location or existence awaits data-plane
// corroboration. Safe to retain; all slices are copies.
type PendingConfirmation struct {
	// ID is the campaign id, ascending in park order.
	ID uint64
	// At is the closing time of the signalling bin.
	At time.Time
	// Deadline is when the pending expires without a verdict (At + ProbeTTL).
	Deadline time.Time
	// SignalPoP is the PoP the group's signals were raised at.
	SignalPoP colo.PoP
	// Epicenter is the inferred epicenter awaiting confirmation; zero when
	// the campaign disambiguates among Candidates.
	Epicenter colo.PoP
	// Candidates are the probed PoPs.
	Candidates []colo.PoP
	// AffectedASes observed across the parked group's signals, sorted.
	AffectedASes []bgp.ASN
	// Paths is the number of diverted stable paths in the parked group.
	Paths int
}

// ProbeOutcome reports how a pending confirmation resolved.
type ProbeOutcome struct {
	// Pending is the parked state the outcome resolves.
	Pending PendingConfirmation
	// Located is set when the verdict pinned an epicenter and the group was
	// promoted to an (open) outage.
	Located bool
	// Epicenter is the promoted epicenter; valid only when Located.
	Epicenter colo.PoP
	// Confirmed reports data-plane corroboration of the promoted epicenter.
	Confirmed bool
	// Checked reports whether any measurement data was available at all.
	Checked bool
	// Expired is set when the pending outlived its TTL without a verdict.
	Expired bool
}

// defaultProbeTTL bounds how long a pending confirmation waits for its
// verdict when Config.ProbeTTL is unset.
const defaultProbeTTL = 10 * time.Minute

// pendingConfirmation is the investigator's parked state for one campaign.
type pendingConfirmation struct {
	id         uint64
	at         time.Time
	deadline   time.Time
	epicenter  colo.PoP // valid: confirmation; zero: disambiguation
	candidates []colo.PoP
	signalPop  colo.PoP
	// recs are detached copies of the group's divert records (key and ends
	// only): enough to rebuild the tracker-facing group at promotion time
	// without retaining shard-owned memory across bins.
	recs []divertRec
	// affected and paths are the snapshot aggregates, computed once at
	// park: they are immutable afterwards and status() runs on the barrier
	// path for every parked campaign.
	affected []bgp.ASN
	paths    int
	// waiting/returned mirror the outage tracker's restoration bookkeeping
	// for the parked interval: provisional shard watches (keyed by
	// pendingWatchPoP) record path returns that happen while the verdict is
	// outstanding, and promotion transfers them onto the opened outage — a
	// return in the parked bin must count exactly as it would have had the
	// synchronous path opened the outage at the signal bin.
	waiting    map[PathKey]bool
	returned   map[PathKey]bool
	lastReturn time.Time
	// chapter is the group's provenance chapter, parked alongside it
	// (Config.Tracing); the campaign verdict is recorded onto it and the
	// chapter follows the group into the outage on promotion.
	chapter *TraceChapter
}

// pendingWatchPoP encodes a parked campaign id as its shard-watch routing
// key: the epicenter is not known yet, so returns are routed through an
// invalid-kind PoP carrying the campaign id and reconciled onto the
// pending at the next barrier. Campaign counts sit far below 2^32 in any
// real deployment, so the uint32 narrowing cannot collide in practice.
func pendingWatchPoP(id uint64) colo.PoP {
	return colo.PoP{Kind: colo.PoPInvalid, ID: uint32(id)}
}

// snapPending parks a group: divert records are copied down to the fields
// the outage tracker reads (path key and link ends), dropping old paths and
// sequence numbers so no shard-owned slices outlive the bin barrier.
func snapPending(id uint64, at, deadline time.Time, epicenter colo.PoP, cands []colo.PoP, g *popGroup) *pendingConfirmation {
	p := &pendingConfirmation{
		id:         id,
		at:         at,
		deadline:   deadline,
		epicenter:  epicenter,
		candidates: append([]colo.PoP(nil), cands...),
		signalPop:  g.pop,
		affected:   g.affectedASes(),
		paths:      g.paths,
		waiting:    make(map[PathKey]bool, g.paths),
		returned:   make(map[PathKey]bool),
		chapter:    g.trace,
	}
	for _, s := range g.signals {
		for _, r := range s.diverted {
			p.recs = append(p.recs, divertRec{key: r.key, ends: r.ends})
			p.waiting[r.key] = true
		}
	}
	return p
}

// rebuildGroup reconstitutes a tracker-facing group from the parked
// records. buildGroup recomputes the link/AS aggregates the tracker reads.
func (p *pendingConfirmation) rebuildGroup() *popGroup {
	return buildGroup(p.signalPop, []signal{{pop: p.signalPop, diverted: p.recs}})
}

// status snapshots the pending for hooks and API serving.
func (p *pendingConfirmation) status() PendingConfirmation {
	return PendingConfirmation{
		ID:           p.id,
		At:           p.at,
		Deadline:     p.deadline,
		SignalPoP:    p.signalPop,
		Epicenter:    p.epicenter,
		Candidates:   append([]colo.PoP(nil), p.candidates...),
		AffectedASes: append([]bgp.ASN(nil), p.affected...),
		Paths:        p.paths,
	}
}

// park suspends a signal group until its probe campaign returns. epicenter
// is the inferred epicenter for confirmation campaigns and zero for
// disambiguation campaigns (candidates then carry the probe set).
func (inv *investigator) park(at time.Time, epicenter colo.PoP, cands []colo.PoP, g *popGroup) {
	ttl := inv.cfg.ProbeTTL
	if ttl <= 0 {
		ttl = defaultProbeTTL
	}
	inv.probeSeq++
	p := snapPending(inv.probeSeq, at, at.Add(ttl), epicenter, cands, g)
	inv.pending[p.id] = p
	inv.prober.Submit(ProbeRequest{
		ID:         p.id,
		At:         at,
		SignalPoP:  g.pop,
		Epicenter:  epicenter,
		Candidates: append([]colo.PoP(nil), cands...),
	})
	if inv.hooks.ProbeRequested != nil {
		inv.hooks.ProbeRequested(p.status())
	}
}

// hasPending reports whether any confirmation is parked — a bin close must
// then run even if no ops arrived, so verdicts are collected and TTLs
// enforced.
func (inv *investigator) hasPending() bool { return len(inv.pending) > 0 }

// pendingIDs returns the parked campaign ids in ascending order.
func (inv *investigator) pendingIDs() []uint64 {
	ids := make([]uint64, 0, len(inv.pending))
	for id := range inv.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// pendingStatuses snapshots every parked confirmation, ascending by id.
func (inv *investigator) pendingStatuses() []PendingConfirmation {
	out := make([]PendingConfirmation, 0, len(inv.pending))
	for _, id := range inv.pendingIDs() {
		out = append(out, inv.pending[id].status())
	}
	return out
}

// applyPendingReturns reconciles returns reported against provisional
// pending watches (routed by pendingWatchPoP). Runs at every bin barrier
// before verdicts are collected, so a promotion observes the returns of
// the parked interval.
func (inv *investigator) applyPendingReturns(evs []returnEvent) {
	for _, ev := range evs {
		p := inv.pending[uint64(ev.epicenter.ID)]
		if p == nil || !p.waiting[ev.key] {
			continue
		}
		delete(p.waiting, ev.key)
		p.returned[ev.key] = true
		if ev.at.After(p.lastReturn) {
			p.lastReturn = ev.at
		}
	}
}

// pendingWatchSets partitions every parked campaign's waiting set across n
// shards, mirroring outageTracker.watchSets: the per-path layer detects
// returns for parked groups exactly as it does for open outages, it just
// routes them through the campaign's sentinel PoP.
func (inv *investigator) pendingWatchSets(n int, shardOf func(PathKey) int) [][]shardWatch {
	out := make([][]shardWatch, n)
	if len(inv.pending) == 0 {
		return out
	}
	for _, id := range inv.pendingIDs() {
		p := inv.pending[id]
		sigs := map[colo.PoP]bool{p.signalPop: true}
		per := make([]map[PathKey]bool, n)
		for key := range p.waiting {
			i := 0
			if shardOf != nil {
				i = shardOf(key)
			}
			if per[i] == nil {
				per[i] = make(map[PathKey]bool)
			}
			per[i][key] = true
		}
		for i := range per {
			if per[i] != nil {
				out[i] = append(out[i], shardWatch{epicenter: pendingWatchPoP(id), signalPops: sigs, waiting: per[i]})
			}
		}
	}
	return out
}

// collectProbes runs at the top of every bin close: completed campaign
// verdicts promote (or discard) their parked groups, then overdue pendings
// expire. Verdicts arrive sorted by campaign id, and expiry walks ids in
// order, so the tracker observes a deterministic sequence.
func (inv *investigator) collectProbes(end time.Time) {
	if inv.prober == nil {
		return
	}
	for _, v := range inv.prober.Collect(end) {
		p := inv.pending[v.ID]
		if p == nil {
			continue // expired earlier, or stale after recovery
		}
		delete(inv.pending, v.ID)
		inv.resolvePending(p, v)
	}
	for _, id := range inv.pendingIDs() {
		p := inv.pending[id]
		if p.deadline.After(end) {
			continue
		}
		delete(inv.pending, id)
		if inv.hooks.ProbeExpired != nil {
			inv.hooks.ProbeExpired(ProbeOutcome{Pending: p.status(), Expired: true})
		}
	}
}

// resultFor extracts the verdict entry for one target.
func resultFor(v ProbeVerdict, target colo.PoP) ProbeResult {
	for _, r := range v.Results {
		if r.Target == target {
			return r
		}
	}
	return ProbeResult{Target: target}
}

// selectConfirmed mirrors the synchronous probeCandidates selection: the
// most specific granularity with exactly one confirmed candidate wins; two
// confirmed candidates of one granularity stay ambiguous.
func selectConfirmed(v ProbeVerdict) colo.PoP {
	confirmed := map[colo.PoPKind][]colo.PoP{}
	for _, r := range v.Results {
		if r.HasData && r.Confirmed {
			confirmed[r.Target.Kind] = append(confirmed[r.Target.Kind], r.Target)
		}
	}
	for _, kind := range []colo.PoPKind{colo.PoPFacility, colo.PoPIXP, colo.PoPCity} {
		switch len(confirmed[kind]) {
		case 0:
			continue
		case 1:
			return confirmed[kind][0]
		default:
			return colo.PoP{}
		}
	}
	return colo.PoP{}
}

// resolvePending applies one campaign verdict: the parked group is promoted
// into the outage tracker at its original signal time, discarded as a
// data-plane-contradicted false positive, or resolved unlocated. The
// decision table is exactly the synchronous openOutageFor/probeCandidates
// logic, shifted one bin later.
func (inv *investigator) resolvePending(p *pendingConfirmation, v ProbeVerdict) {
	out := ProbeOutcome{Pending: p.status()}
	var epicenter colo.PoP
	confirmed, checked := false, false
	if p.epicenter.IsValid() {
		// Confirmation campaign: one target, the inferred epicenter.
		r := resultFor(v, p.epicenter)
		if r.HasData {
			checked = true
			confirmed = r.Confirmed
			if !confirmed {
				// Data plane contradicts the control plane: treat as a
				// false positive and do not open an outage (Section 4.4).
				out.Checked = true
				if inv.hooks.ProbeConfirmed != nil {
					inv.hooks.ProbeConfirmed(out)
				}
				return
			}
		}
		// No data: the inference stands unvalidated, as in the sync path.
		epicenter = p.epicenter
	} else {
		// Disambiguation campaign: pick the unique confirmed candidate.
		epicenter = selectConfirmed(v)
		for _, r := range v.Results {
			if r.HasData {
				out.Checked = true
			}
		}
		if !epicenter.IsValid() {
			// Resolved unlocated: Kepler never reports a location it could
			// not corroborate; the signal stays in the incident log.
			if inv.hooks.ProbeConfirmed != nil {
				inv.hooks.ProbeConfirmed(out)
			}
			return
		}
		confirmed, checked = true, true
		out.Checked = true
	}

	if p.chapter != nil {
		outcome := "promoted"
		if p.epicenter.IsValid() {
			outcome = "confirmed"
			if !checked {
				outcome = "unvalidated"
			}
		}
		tp := &TraceProbe{
			Campaign:   p.id,
			Outcome:    outcome,
			Candidates: append([]colo.PoP(nil), p.candidates...),
			Epicenter:  epicenter,
		}
		for _, r := range v.Results {
			tp.Results = append(tp.Results, TraceProbeResult{Target: r.Target, Confirmed: r.Confirmed, HasData: r.HasData})
		}
		p.chapter.Probe = tp
		p.chapter.Epicenter = epicenter
	}
	g := p.rebuildGroup()
	existed := inv.tracker.opened[epicenter] != nil
	inv.tracker.observe(p.at, epicenter, g, confirmed, checked)
	// Transfer the returns the provisional watches recorded while the
	// verdict was outstanding: the opened outage's restoration state must
	// equal what the synchronous path would have accumulated by now.
	if o := inv.tracker.opened[epicenter]; o != nil {
		for key := range p.returned {
			if o.waiting[key] {
				delete(o.waiting, key)
				o.returned[key] = true
			}
		}
		if p.lastReturn.After(o.lastReturn) {
			o.lastReturn = p.lastReturn
		}
		inv.traceAppend(o, p.chapter)
	}
	out.Located = true
	out.Epicenter = epicenter
	out.Confirmed = confirmed
	out.Checked = out.Checked || checked
	if inv.hooks.ProbeConfirmed != nil {
		inv.hooks.ProbeConfirmed(out)
	}
	if o := inv.tracker.opened[epicenter]; o != nil {
		switch {
		case !existed && inv.hooks.OutageOpened != nil:
			inv.hooks.OutageOpened(o.status())
		case existed && inv.hooks.OutageUpdated != nil:
			inv.hooks.OutageUpdated(o.status())
		}
	}
}

// finishProbes settles the probe layer at stream flush: one final collect
// promotes campaigns submitted in the last bin (a deterministic prober
// completes them by then), and whatever is still unresolved expires — an
// aborted daemon re-parks it on recovery replay instead.
func (inv *investigator) finishProbes(asOf time.Time) {
	if inv.prober == nil {
		return
	}
	inv.collectProbes(asOf.Add(inv.cfg.BinInterval))
	for _, id := range inv.pendingIDs() {
		p := inv.pending[id]
		delete(inv.pending, id)
		if inv.hooks.ProbeExpired != nil {
			inv.hooks.ProbeExpired(ProbeOutcome{Pending: p.status(), Expired: true})
		}
	}
}

// resolveByProbe is the shared tail of the disambiguation fallbacks: it
// records the candidate set on the group and reports the epicenter
// unresolved. Probing itself happens later, outside classification — which
// keeps classifyGroup pure and safe to run on investigation workers: with a
// synchronous data plane, investigate probes the recorded candidates
// inline during its serial merge (in deterministic group order, so the
// dp.Confirm sequence matches the sequential path exactly); with an
// asynchronous prober, openOutageFor parks the group as a disambiguation
// campaign over them.
func (inv *investigator) resolveByProbe(_ time.Time, g *popGroup, cands []colo.PoP) colo.PoP {
	if g.trace != nil {
		g.trace.step(TraceStep{Stage: "probe-fallback",
			Candidates: append([]colo.PoP(nil), cands...),
			Outcome:    "control plane could not converge: deferred to targeted data-plane probes"})
	}
	g.probeCands = cands
	return colo.PoP{}
}
