package core

import (
	"sort"
	"time"

	"kepler/internal/as2org"
	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/metrics"
)

// stateView gives the investigator read access to the per-path layer's
// cross-path aggregates. The sequential detector backs it with its single
// shard's maps directly; the concurrent engine backs it with an on-demand
// merge across shards, valid only while the shards are paused at a bin
// barrier.
type stateView interface {
	// stableAt returns the stable baseline at a PoP, grouped by near-end
	// AS. The returned map must be treated as read-only and not retained
	// past the current bin close.
	stableAt(pop colo.PoP) map[bgp.ASN]map[PathKey]popEnd
	// pathsContaining returns the number of monitored paths whose AS path
	// traverses a.
	pathsContaining(a bgp.ASN) int
}

// investigator owns the cross-path layer of the pipeline: bin-boundary
// threshold evaluation, Section 4.3 signal investigation, and outage
// duration tracking. It runs strictly at bin boundaries, which is what
// lets the per-path layer shard freely: all global reads happen while the
// shards are synchronized.
type investigator struct {
	cfg   Config
	cmap  *colo.Map
	orgs  *as2org.Table
	dp    DataPlane
	view  stateView
	hooks Hooks

	// prober, when set, replaces the synchronous dp with deferred probe
	// campaigns; pending holds the parked signal groups awaiting verdicts.
	prober   Prober
	pending  map[uint64]*pendingConfirmation
	probeSeq uint64

	incidents []Incident
	tracker   *outageTracker
	completed []Outage

	// feed, when set (Config.FeedSilence), is the stream-time liveness
	// watchdog; its transitions fire at bin closes, right before BinClosed.
	// It is observed on the ingestion goroutine and evaluated only at
	// barriers, so it needs no locking.
	feed *bgpstream.FeedWatchdog

	// binStage, when set, receives the staged wall-clock spans of every
	// non-idle bin close (SetBinStageStats). Purely observational: timing
	// never influences detection.
	binStage *metrics.BinStageStats
	// engineBarrier/engineMerge carry the spans the Engine measured before
	// entering closeBinOver (barrier wait, divert merge); the Detector
	// leaves them zero. Consumed and reset by the next closeBinOver.
	engineBarrier time.Duration
	engineMerge   time.Duration
}

func newInvestigator(cfg Config, cmap *colo.Map, orgs *as2org.Table, view stateView) *investigator {
	return &investigator{
		cfg:     cfg,
		cmap:    cmap,
		orgs:    orgs,
		view:    view,
		pending: make(map[uint64]*pendingConfirmation),
		tracker: newOutageTracker(cfg),
	}
}

func (inv *investigator) drainCompleted() []Outage {
	out := inv.completed
	inv.completed = nil
	return out
}

// signal is one (pop, nearAS) outage signal raised at a bin boundary.
type signal struct {
	pop      colo.PoP
	near     bgp.ASN
	diverted []divertRec
	stable   int
}

// runBin evaluates the per-AS divergence thresholds for the bin ending at
// binEnd and classifies any resulting signals (the signal-raising half of
// the sequential detector's closeBin). diverted is the bin's merged divert
// index; callers tick the outage tracker and clean the stable baseline
// afterwards.
func (inv *investigator) runBin(binEnd time.Time, diverted map[colo.PoP]map[bgp.ASN][]divertRec) {
	if len(diverted) == 0 {
		return
	}

	var signals []signal
	pops := make([]colo.PoP, 0, len(diverted))
	for pop := range diverted {
		pops = append(pops, pop)
	}
	sort.Slice(pops, func(i, j int) bool {
		if pops[i].Kind != pops[j].Kind {
			return pops[i].Kind < pops[j].Kind
		}
		return pops[i].ID < pops[j].ID
	})
	for _, pop := range pops {
		nears := make([]bgp.ASN, 0, len(diverted[pop]))
		for near := range diverted[pop] {
			nears = append(nears, near)
		}
		sort.Slice(nears, func(i, j int) bool { return nears[i] < nears[j] })

		stableByNear := inv.view.stableAt(pop)

		if inv.cfg.DisablePerASGrouping {
			// Ablation mode: one aggregate fraction per PoP. A partial
			// outage hitting regional ASes drowns under a big AS's
			// unaffected paths — the bias the paper's grouping removes.
			divertedTotal := 0
			for _, near := range nears {
				divertedTotal += len(diverted[pop][near])
			}
			total := inv.totalStableAt(pop)
			if total == 0 || float64(divertedTotal)/float64(total) <= inv.cfg.Tfail {
				continue
			}
			for _, near := range nears {
				recs := diverted[pop][near]
				signals = append(signals, signal{pop: pop, near: near, diverted: recs, stable: len(stableByNear[near])})
			}
			continue
		}

		for _, near := range nears {
			recs := diverted[pop][near]
			stableCount := len(stableByNear[near]) // still includes diverted ones
			if stableCount == 0 {
				continue
			}
			frac := float64(len(recs)) / float64(stableCount)
			if frac > inv.cfg.Tfail {
				signals = append(signals, signal{pop: pop, near: near, diverted: recs, stable: stableCount})
			}
		}
	}

	if len(signals) > 0 {
		inv.investigate(binEnd, signals)
	}
}

// closeBinOver is the canonical bin-close sequence shared by Detector and
// Engine: reconcile path returns, investigate the merged diverts, tick
// outage tracking, redistribute restoration watches, then apply the
// shards' end-of-bin baseline cleanup. The caller guarantees exclusive
// access to every shard (the Detector is single-threaded; the Engine holds
// its workers at the bin barrier) and has already run promotions due at
// end. tick and watchSets must not read shard state: finishBin runs after
// them, and the investigator's view of the shards is only defined up to
// this function's return.
func (inv *investigator) closeBinOver(end time.Time, shards []*pathShard, diverted map[colo.PoP]map[bgp.ASN][]divertRec, shardOf func(PathKey) int) {
	// Staged timing (SetBinStageStats): each region below is bracketed with
	// a monotonic-clock span. Total also covers the un-bracketed glue
	// (tracker tick, watch-set distribution), so Total >= the stage sum.
	stage := inv.binStage
	var spans metrics.BinSpans
	var start, t0 time.Time
	if stage != nil {
		spans.End = end
		spans.Stage[metrics.StageBarrier] = inv.engineBarrier
		spans.Stage[metrics.StageMerge] = inv.engineMerge
		start = time.Now() //keplervet:ignore walltime metrics span: staged bin-close histogram stamp
		t0 = start
	}
	inv.engineBarrier, inv.engineMerge = 0, 0
	mark := func(i int) {
		if stage != nil {
			now := time.Now() //keplervet:ignore walltime metrics span: staged bin-close histogram stamp
			spans.Stage[i] += now.Sub(t0)
			t0 = now
		}
	}

	// Returns first, split by watch origin: events routed through a parked
	// campaign's sentinel PoP reconcile onto the pending (so the verdict
	// collection that follows promotes with the parked interval's returns
	// already counted), the rest onto the tracker as before.
	var evs []returnEvent
	for _, s := range shards {
		evs = append(evs, s.takeReturns()...)
	}
	if len(inv.pending) > 0 {
		pendEvs := evs[:0:0]
		trackEvs := evs[:0]
		for _, ev := range evs {
			if ev.epicenter.Kind == colo.PoPInvalid {
				pendEvs = append(pendEvs, ev)
			} else {
				trackEvs = append(trackEvs, ev)
			}
		}
		inv.applyPendingReturns(pendEvs)
		evs = trackEvs
	}
	// Probe verdicts: campaigns parked at earlier bin closes promote into
	// (or drop out of) the tracker before this bin's own signals are
	// investigated, so their restoration watches ship with this barrier's
	// watch sets.
	inv.collectProbes(end)
	inv.tracker.applyReturns(evs)
	mark(metrics.StageCollect)
	inv.runBin(end, diverted)
	mark(metrics.StageClassify)
	inv.tracker.tick(end, inv)
	sets := inv.tracker.watchSets(len(shards), shardOf)
	if len(inv.pending) > 0 {
		pendSets := inv.pendingWatchSets(len(shards), shardOf)
		for i := range sets {
			sets[i] = append(sets[i], pendSets[i]...)
		}
	}
	for i, s := range shards {
		s.watches = sets[i]
	}
	if stage != nil {
		// The tick/watch-set glue above stays un-bracketed.
		t0 = time.Now() //keplervet:ignore walltime metrics span: staged bin-close histogram stamp
	}
	for _, s := range shards {
		s.finishBin()
	}
	mark(metrics.StageFinish)
	inv.fireFeedTransitions(end)
	if inv.hooks.BinClosed != nil {
		inv.hooks.BinClosed(end)
	}
	mark(metrics.StageHooks)
	if stage != nil {
		spans.Total = spans.Stage[metrics.StageBarrier] + spans.Stage[metrics.StageMerge] + time.Since(start) //keplervet:ignore walltime metrics span: staged bin-close histogram stamp
		stage.Record(spans)
	}
}

// feedDue reports whether the watchdog has transitions pending at end,
// without committing them. The engine's idle-bin fast path consults it so
// a silence threshold crossing still closes an otherwise no-op bin.
func (inv *investigator) feedDue(end time.Time) bool {
	return inv.feed != nil && inv.feed.Due(end)
}

// fireFeedTransitions evaluates and emits the bin's feed-health edges. It
// runs only from closeBinOver (the bin-barrier hook site), keeping every
// hook invocation inside the barrier contract.
func (inv *investigator) fireFeedTransitions(end time.Time) {
	if inv.feed == nil {
		return
	}
	for _, tr := range inv.feed.Evaluate(end) {
		if tr.Degraded {
			if inv.hooks.FeedDegraded != nil {
				inv.hooks.FeedDegraded(tr)
			}
		} else if inv.hooks.FeedRecovered != nil {
			inv.hooks.FeedRecovered(tr)
		}
	}
}
