package core

import (
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
)

func TestExclusiveBest(t *testing.T) {
	// Candidate 0: members 1,2,3 (1,2 exclusive; 3 shared).
	// Candidate 1: members 3,4,5 (4,5 exclusive).
	sets := [][]bgp.ASN{{1, 2, 3}, {3, 4, 5}}

	// All of candidate 0's exclusive members affected, none of 1's.
	if got := exclusiveBest([]bgp.ASN{1, 2}, sets); got != 0 {
		t.Errorf("exclusiveBest = %d, want 0", got)
	}
	// Both candidates hot: ambiguous.
	if got := exclusiveBest([]bgp.ASN{1, 2, 4, 5}, sets); got != -1 {
		t.Errorf("both hot: %d, want -1", got)
	}
	// Lukewarm second candidate (1 of 2 exclusive affected = 0.5): ambiguous.
	if got := exclusiveBest([]bgp.ASN{1, 2, 4}, sets); got != -1 {
		t.Errorf("lukewarm: %d, want -1", got)
	}
	// Only the shared member affected: nobody's exclusive set is hot.
	if got := exclusiveBest([]bgp.ASN{3}, sets); got != -1 {
		t.Errorf("shared only: %d, want -1", got)
	}
	// Empty candidate set.
	if got := exclusiveBest([]bgp.ASN{1}, nil); got != -1 {
		t.Errorf("no candidates: %d, want -1", got)
	}
}

func mkGroup(pop colo.PoP, recs []divertRec) *popGroup {
	return buildGroup(pop, []signal{{pop: pop, diverted: recs}})
}

func TestCommonPathASes(t *testing.T) {
	pop := colo.FacilityPoP(1)
	recs := []divertRec{
		{key: PathKey{Peer: 10}, ends: popEnd{near: 11, far: 12}, oldPath: bgp.Path{10, 99, 11, 12}},
		{key: PathKey{Peer: 20}, ends: popEnd{near: 21, far: 22}, oldPath: bgp.Path{20, 99, 21, 22}},
		{key: PathKey{Peer: 30}, ends: popEnd{near: 31, far: 32}, oldPath: bgp.Path{30, 99, 31, 32}},
	}
	g := mkGroup(pop, recs)
	cands := g.commonPathASes()
	if len(cands) == 0 || cands[0] != 99 {
		t.Fatalf("commonPathASes = %v, want [99 ...]", cands)
	}

	// 2 of 3 paths containing the AS is below the 80% majority.
	recs[2].oldPath = bgp.Path{30, 31, 32}
	g = mkGroup(pop, recs)
	for _, c := range g.commonPathASes() {
		if c == 99 {
			t.Error("99 kept despite sub-majority presence")
		}
	}
}

func TestVanishedCommonAS(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	pop := colo.FacilityPoP(1)
	recs := []divertRec{
		{key: PathKey{Peer: 10}, ends: popEnd{near: 11, far: 12}, oldPath: bgp.Path{10, 99, 12}},
		{key: PathKey{Peer: 20}, ends: popEnd{near: 21, far: 22}, oldPath: bgp.Path{20, 99, 22}},
	}
	g := mkGroup(pop, recs)

	// 99 retains plenty of monitored presence: hub alive, not AS-level.
	d.sh.pathsContaining[99] = 50
	if got := d.inv.vanishedCommonAS(g); got != 0 {
		t.Errorf("healthy hub flagged: %v", got)
	}
	// 99's presence collapsed below the diverted count: AS-level.
	d.sh.pathsContaining[99] = 1
	if got := d.inv.vanishedCommonAS(g); got != 99 {
		t.Errorf("vanished AS not flagged: %v", got)
	}
}

type scriptedDP struct {
	confirm map[colo.PoP]bool
	calls   int
}

func (s *scriptedDP) Confirm(p colo.PoP, _ time.Time) (bool, bool) {
	s.calls++
	c, ok := s.confirm[p]
	if !ok {
		return false, true
	}
	return c, true
}

func TestProbeCandidatesSpecificity(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	at := time.Now()

	// No data plane: nothing resolvable.
	if got := d.inv.probeCandidates(at, []colo.PoP{colo.FacilityPoP(1)}, nil); got.IsValid() {
		t.Errorf("probe without dp resolved %v", got)
	}

	// A facility and the IXP containing it both confirm: facility wins.
	dp := &scriptedDP{confirm: map[colo.PoP]bool{
		colo.FacilityPoP(5): true,
		colo.IXPPoP(2):      true,
	}}
	d.SetDataPlane(dp)
	got := d.inv.probeCandidates(at, []colo.PoP{colo.IXPPoP(2), colo.FacilityPoP(5), colo.FacilityPoP(6)}, nil)
	if got != colo.FacilityPoP(5) {
		t.Errorf("probe = %v, want facility:5", got)
	}

	// Two confirmed facilities: ambiguous.
	dp.confirm[colo.FacilityPoP(6)] = true
	if got := d.inv.probeCandidates(at, []colo.PoP{colo.FacilityPoP(5), colo.FacilityPoP(6)}, nil); got.IsValid() {
		t.Errorf("ambiguous probe resolved %v", got)
	}

	// Only the IXP confirms: IXP wins.
	if got := d.inv.probeCandidates(at, []colo.PoP{colo.IXPPoP(2), colo.FacilityPoP(7)}, nil); got != colo.IXPPoP(2) {
		t.Errorf("probe = %v, want ixp:2", got)
	}
}

func TestPerASGroupingAblation(t *testing.T) {
	// A big AS (90 stable paths, unaffected) masks a regional AS's
	// complete divergence (10 paths) at the same PoP: per-AS grouping
	// signals, aggregate-only does not — the paper's Section 4.2 bias.
	run := func(disable bool) int {
		dict, cmap, _ := microWorld(t)
		cfg := DefaultConfig()
		cfg.DisablePerASGrouping = disable
		d := New(cfg, dict, cmap, nil)

		at := tBase
		announce := func(near bgp.ASN, n int, tagged bool, via bgp.ASN) {
			for k := 0; k < n; k++ {
				prefix := prefixFor(int(near)*1000 + k)
				var comms bgp.Communities
				if tagged {
					comms = bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
				}
				d.Process(mkUpdate(at, near, prefix, bgp.Path{near, via}, comms))
			}
		}
		announce(11, 300, true, 21) // the big AS: 300 of 330 stable paths
		announce(12, 10, true, 22)  // the regional ASes: 10 each
		announce(13, 10, true, 23)
		announce(14, 10, true, 24)

		// Mature the baseline.
		d.Process(mkUpdate(tBase.Add(49*time.Hour), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

		// Regional ASes 12-14 fully divert; the big AS is untouched.
		at = tBase.Add(50 * time.Hour)
		for _, near := range []bgp.ASN{12, 13, 14} {
			for k := 0; k < 10; k++ {
				prefix := prefixFor(int(near)*1000 + k)
				d.Process(mkUpdate(at, near, prefix, bgp.Path{near, 99, bgp.ASN(int(near) + 10)}, nil))
			}
		}
		d.Process(mkUpdate(at.Add(2*time.Minute), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

		pop := 0
		for _, inc := range d.Incidents() {
			if inc.Kind == IncidentPoP {
				pop++
			}
		}
		return pop
	}

	grouped := run(false)
	aggregate := run(true)
	if grouped == 0 {
		t.Fatal("per-AS grouping missed the partial outage")
	}
	if aggregate != 0 {
		t.Fatalf("aggregate-only unexpectedly signalled (%d): the 30/120 fraction is above threshold?", aggregate)
	}
}

func prefixFor(i int) string {
	return bgp.Path{}.String() + prefixString(i)
}

func prefixString(i int) string {
	a := byte(20 + (i>>16)&0x3f)
	b := byte(i >> 8)
	c := byte(i)
	return netipString(a, b, c)
}

func netipString(a, b, c byte) string {
	return itoa(a) + "." + itoa(b) + "." + itoa(c) + ".0/24"
}

func itoa(b byte) string {
	if b == 0 {
		return "0"
	}
	var buf [3]byte
	i := 3
	for b > 0 {
		i--
		buf[i] = '0' + b%10
		b /= 10
	}
	return string(buf[i:])
}
