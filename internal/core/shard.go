package core

import (
	"container/heap"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/communities"
)

// popEnd is one tagged (near, far) AS pair a path crosses at a PoP.
type popEnd struct {
	near, far bgp.ASN
}

// pathTag is one currently tagged PoP of a path: the hop ends the
// community bound to it and the instant the tag became continuous (the
// stability clock of Section 4.2).
type pathTag struct {
	pop   colo.PoP
	ends  popEnd
	since time.Time
}

// pathState is the tracked state of one monitored path. Tags live in a
// small slice rather than maps: most paths traverse only a handful of
// tagged PoPs, so linear scans beat map overhead and the slab is recycled
// across announcements instead of being reallocated per update.
type pathState struct {
	tags []pathTag
	// path is the current (deduplicated) AS path; kept so that signal
	// investigation can intersect the old paths of diverted routes and
	// recognize AS-level incidents (Section 4.3).
	path bgp.Path
}

// find returns the tag for pop, or nil.
func (st *pathState) find(pop colo.PoP) *pathTag {
	for i := range st.tags {
		if st.tags[i].pop == pop {
			return &st.tags[i]
		}
	}
	return nil
}

// tagsHave reports whether tags contains pop.
func tagsHave(tags []pathTag, pop colo.PoP) bool {
	for i := range tags {
		if tags[i].pop == pop {
			return true
		}
	}
	return false
}

// divertRec is one path leaving a PoP within the current bin. seq is the
// global op sequence number of the route op that caused the divert: the
// investigator sorts merged per-shard slices on it to reproduce the exact
// record-order slices of the sequential detector.
type divertRec struct {
	key     PathKey
	ends    popEnd
	oldPath bgp.Path
	seq     uint64
}

// promo schedules a path's promotion into the stable baseline once its tag
// has persisted for the stability window.
type promo struct {
	due   time.Time
	key   PathKey
	pop   colo.PoP
	since time.Time // guards against re-tagging between scheduling and due
}

// promoQueue is a min-heap on due time.
type promoQueue []promo

func (q promoQueue) Len() int           { return len(q) }
func (q promoQueue) Less(i, j int) bool { return q[i].due.Before(q[j].due) }
func (q promoQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *promoQueue) Push(x any)        { *q = append(*q, x.(promo)) }
func (q *promoQueue) Pop() any          { old := *q; n := len(old); p := old[n-1]; *q = old[:n-1]; return p }

// shardWatch mirrors one open outage's restoration bookkeeping for the keys
// a shard owns: the concurrent replacement for the sequential detector's
// inline noteReturn walk over the outage tracker. waiting is the shard's
// private copy; the tracker keeps the authoritative sets and reconciles
// reported returns at each bin barrier.
type shardWatch struct {
	epicenter  colo.PoP
	signalPops map[colo.PoP]bool // shared read-only with the tracker between barriers
	waiting    map[PathKey]bool
}

// returnEvent reports that a diverted path re-tagged one of its outage's
// signal PoPs, counting toward restoration (Section 4.4).
type returnEvent struct {
	epicenter colo.PoP
	key       PathKey
	at        time.Time
}

// Free-list caps: recycling is bounded so a burst (a mass withdrawal, a
// divert-heavy bin) does not pin its peak footprint forever. Entries past
// the cap simply go to the GC.
const (
	maxFreeStates = 4096
	maxFreeSets   = 1024
	maxFreeMaps   = 256
	maxFreeRecs   = 1024
)

// pathShard owns the per-path monitoring state (Section 4.2) for one hash
// partition of the PathKey space. All of its state transitions depend only
// on the ops of its own keys (plus broadcast peer-down ops), which is what
// makes the layer embarrassingly parallel; only the bin-boundary signal
// investigation needs a merged cross-shard view.
type pathShard struct {
	cfg  Config
	dict *communities.Dictionary
	cmap *colo.Map

	paths map[PathKey]*pathState
	// stable[pop][near] -> set of stable paths with that near-end AS.
	stable map[colo.PoP]map[bgp.ASN]map[PathKey]popEnd
	// pathsOfPeer indexes paths by vantage for session-gap handling.
	pathsOfPeer map[bgp.ASN]map[PathKey]bool
	// pathsContaining counts monitored paths whose AS path traverses each
	// ASN; signal investigation sums it across shards to tell a globally
	// vanishing AS (AS-level incident) from a hub that merely lost one site.
	pathsContaining map[bgp.ASN]int

	promos   promoQueue
	diverted map[colo.PoP]map[bgp.ASN][]divertRec // current bin

	// watches / returns implement restoration tracking between barriers.
	watches []shardWatch
	returns []returnEvent

	// Arena-style recycling of the ingest hot path's short-lived
	// structures. scratchTags/scratchHops are the per-announce working
	// buffers; the free lists hold retired path states, emptied stable key
	// sets, and the previous bins' divert indexes and record slabs.
	scratchTags []pathTag
	scratchHops []communities.TaggedHop
	freeStates  []*pathState
	freeSets    []map[PathKey]popEnd
	freeByNear  []map[bgp.ASN][]divertRec
	freeRecs    [][]divertRec
}

func newPathShard(cfg Config, dict *communities.Dictionary, cmap *colo.Map) *pathShard {
	return &pathShard{
		cfg:             cfg,
		dict:            dict,
		cmap:            cmap,
		paths:           make(map[PathKey]*pathState),
		stable:          make(map[colo.PoP]map[bgp.ASN]map[PathKey]popEnd),
		pathsOfPeer:     make(map[bgp.ASN]map[PathKey]bool),
		pathsContaining: make(map[bgp.ASN]int),
		diverted:        make(map[colo.PoP]map[bgp.ASN][]divertRec),
	}
}

// newState takes a path state off the free list, or allocates one.
func (s *pathShard) newState() *pathState {
	if n := len(s.freeStates); n > 0 {
		st := s.freeStates[n-1]
		s.freeStates[n-1] = nil
		s.freeStates = s.freeStates[:n-1]
		return st
	}
	return &pathState{}
}

// releaseState retires a path state removed from s.paths, keeping its tag
// slab for reuse. The caller must not hold references to it afterwards.
func (s *pathShard) releaseState(st *pathState) {
	if len(s.freeStates) >= maxFreeStates {
		return
	}
	st.tags = st.tags[:0]
	st.path = nil
	s.freeStates = append(s.freeStates, st)
}

// newKeySet takes an emptied stable key set off the free list, or
// allocates one.
func (s *pathShard) newKeySet() map[PathKey]popEnd {
	if n := len(s.freeSets); n > 0 {
		set := s.freeSets[n-1]
		s.freeSets[n-1] = nil
		s.freeSets = s.freeSets[:n-1]
		return set
	}
	return make(map[PathKey]popEnd)
}

// apply executes one fanned-out route op. Promotions due at or before the
// op's time run first, exactly as the sequential detector promotes before
// processing each record.
func (s *pathShard) apply(op *bgpstream.RouteOp) {
	s.runPromotions(op.Time)
	switch op.Kind {
	case bgpstream.OpPeerDown:
		s.suspendPeer(op.Peer)
	case bgpstream.OpWithdraw:
		s.withdraw(PathKey{Peer: op.Peer, Prefix: op.Prefix}, op.Seq)
	case bgpstream.OpAnnounce:
		if err := bgp.Sanitize(op.Prefix, op.Path); err != nil {
			return
		}
		s.announce(op.Time, PathKey{Peer: op.Peer, Prefix: op.Prefix}, op.Path, op.Communities, op.Seq)
	}
}

// runPromotions moves paths whose tags survived the stability window into
// the stable baseline.
func (s *pathShard) runPromotions(now time.Time) {
	for len(s.promos) > 0 && !s.promos[0].due.After(now) {
		p := heap.Pop(&s.promos).(promo)
		st := s.paths[p.key]
		if st == nil {
			continue
		}
		t := st.find(p.pop)
		if t == nil || !t.since.Equal(p.since) {
			continue // re-tagged since scheduling; a newer promo exists
		}
		s.addStable(p.pop, p.key, t.ends)
	}
}

// announce updates a path with a new tagged route.
func (s *pathShard) announce(at time.Time, key PathKey, path bgp.Path, comms bgp.Communities, seq uint64) {
	hops := s.dict.AnnotateAppend(s.scratchHops[:0], path, comms, s.cmap)
	s.scratchHops = hops
	newTags := s.scratchTags[:0]
	for _, h := range hops {
		e := popEnd{near: h.Near, far: h.Far}
		dup := false
		for i := range newTags {
			if newTags[i].pop == h.PoP {
				newTags[i].ends = e // last community for a PoP wins, as before
				dup = true
				break
			}
		}
		if !dup {
			newTags = append(newTags, pathTag{pop: h.PoP, ends: e})
		}
	}

	st := s.paths[key]
	if st == nil {
		st = s.newState()
		s.paths[key] = st
		if s.pathsOfPeer[key.Peer] == nil {
			s.pathsOfPeer[key.Peer] = make(map[PathKey]bool)
		}
		s.pathsOfPeer[key.Peer][key] = true
	}

	// PoPs no longer tagged: divert events. A changed community counts as
	// a route change even when the AS path is identical — and vice versa a
	// kept community means no change for that PoP (Section 4.2).
	for i := range st.tags {
		t := &st.tags[i]
		if !tagsHave(newTags, t.pop) {
			s.recordDivert(key, t.pop, t.ends, st.path, seq)
		}
	}
	// Newly tagged PoPs start their stability clock; kept PoPs keep it.
	for i := range newTags {
		nt := &newTags[i]
		if old := st.find(nt.pop); old != nil {
			nt.since = old.since
		} else {
			nt.since = at
			heap.Push(&s.promos, promo{due: at.Add(s.cfg.StableWindow), key: key, pop: nt.pop, since: at})
		}
		if at.Sub(nt.since) >= s.cfg.StableWindow {
			s.addStable(nt.pop, key, nt.ends)
		}
	}
	// Swap the tag slabs: the state keeps newTags; its previous slab
	// becomes the next announce's scratch buffer.
	s.scratchTags = st.tags[:0]
	st.tags = newTags
	s.countPath(st.path, -1)
	st.path = path.Dedup()
	s.countPath(st.path, +1)

	// A re-tag may return a diverted path to its baseline PoP.
	s.noteReturn(at, key, newTags)
}

// noteReturn checks the shard's outage watches: a waiting path re-tagging a
// signal PoP counts toward restoration and is reported at the next barrier.
func (s *pathShard) noteReturn(at time.Time, key PathKey, newTags []pathTag) {
	for i := range s.watches {
		w := &s.watches[i]
		if !w.waiting[key] {
			continue
		}
		for j := range newTags {
			if w.signalPops[newTags[j].pop] {
				delete(w.waiting, key)
				s.returns = append(s.returns, returnEvent{epicenter: w.epicenter, key: key, at: at})
				break
			}
		}
	}
}

// withdraw removes a path entirely (explicit withdrawal).
func (s *pathShard) withdraw(key PathKey, seq uint64) {
	st := s.paths[key]
	if st == nil {
		return
	}
	for i := range st.tags {
		t := &st.tags[i]
		s.recordDivert(key, t.pop, t.ends, st.path, seq)
	}
	s.countPath(st.path, -1)
	delete(s.paths, key)
	if m := s.pathsOfPeer[key.Peer]; m != nil {
		delete(m, key)
	}
	s.releaseState(st)
}

// suspendPeer silently drops a peer's paths from monitoring state after a
// collector feed disruption.
func (s *pathShard) suspendPeer(peer bgp.ASN) {
	for key := range s.pathsOfPeer[peer] {
		st := s.paths[key]
		if st == nil {
			continue
		}
		for i := range st.tags {
			s.removeStable(st.tags[i].pop, key)
		}
		s.countPath(st.path, -1)
		delete(s.paths, key)
		s.releaseState(st)
	}
	delete(s.pathsOfPeer, peer)
}

// countPath adjusts pathsContaining for every AS on the path.
func (s *pathShard) countPath(path bgp.Path, delta int) {
	for _, a := range path {
		s.pathsContaining[a] += delta
		if s.pathsContaining[a] <= 0 {
			delete(s.pathsContaining, a)
		}
	}
}

func (s *pathShard) addStable(pop colo.PoP, key PathKey, ends popEnd) {
	byNear := s.stable[pop]
	if byNear == nil {
		byNear = make(map[bgp.ASN]map[PathKey]popEnd)
		s.stable[pop] = byNear
	}
	set := byNear[ends.near]
	if set == nil {
		set = s.newKeySet()
		byNear[ends.near] = set
	}
	set[key] = ends
}

func (s *pathShard) removeStable(pop colo.PoP, key PathKey) {
	for near, set := range s.stable[pop] {
		if _, ok := set[key]; ok {
			delete(set, key)
			if len(set) == 0 {
				delete(s.stable[pop], near)
				if len(s.freeSets) < maxFreeSets {
					//keplervet:ignore maporder free-list recycling: pooled sets are empty, reuse order never reaches output
					s.freeSets = append(s.freeSets, set)
				}
			}
		}
	}
	if len(s.stable[pop]) == 0 {
		delete(s.stable, pop)
	}
}

// recordDivert notes that a stable path left a PoP within the current bin.
// Non-stable paths are transient and ignored.
func (s *pathShard) recordDivert(key PathKey, pop colo.PoP, ends popEnd, oldPath bgp.Path, seq uint64) {
	set := s.stable[pop][ends.near]
	if _, stable := set[key]; !stable {
		return
	}
	byNear := s.diverted[pop]
	if byNear == nil {
		if n := len(s.freeByNear); n > 0 {
			byNear = s.freeByNear[n-1]
			s.freeByNear[n-1] = nil
			s.freeByNear = s.freeByNear[:n-1]
		} else {
			byNear = make(map[bgp.ASN][]divertRec)
		}
		s.diverted[pop] = byNear
	}
	recs, ok := byNear[ends.near]
	if !ok {
		if n := len(s.freeRecs); n > 0 {
			recs = s.freeRecs[n-1]
			s.freeRecs[n-1] = nil
			s.freeRecs = s.freeRecs[:n-1]
		}
	}
	byNear[ends.near] = append(recs, divertRec{key: key, ends: ends, oldPath: oldPath, seq: seq})
}

// takeReturns hands the accumulated return events to the investigator.
func (s *pathShard) takeReturns() []returnEvent {
	out := s.returns
	s.returns = nil
	return out
}

// finishBin applies the end-of-bin cleanup after investigation: diverted
// paths leave the stable baseline (Section 4.2: "after each binning
// interval, we remove the changed paths from the set of stable paths").
// The bin's divert indexes and record slabs are cleared in place and
// recycled rather than reallocated each bin; nothing downstream retains
// them — the investigator deep-copies whatever outlives the barrier, and
// finishBin runs last in the bin-close sequence.
func (s *pathShard) finishBin() {
	for pop, byNear := range s.diverted {
		for near, recs := range byNear {
			for i := range recs {
				s.removeStable(pop, recs[i].key)
				recs[i] = divertRec{} // drop oldPath references
			}
			if len(s.freeRecs) < maxFreeRecs {
				//keplervet:ignore maporder free-list recycling: pooled slabs are emptied, reuse order never reaches output
				s.freeRecs = append(s.freeRecs, recs[:0])
			}
			delete(byNear, near)
		}
		delete(s.diverted, pop)
		if len(s.freeByNear) < maxFreeMaps {
			//keplervet:ignore maporder free-list recycling: pooled maps are cleared, reuse order never reaches output
			s.freeByNear = append(s.freeByNear, byNear)
		}
	}
}
