package core

import (
	"bytes"
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/mrt"
)

// refRun replays the stream through a fresh sequential detector, recording
// the cumulative number of drained outages before each record index so a
// checkpoint-suffix run can be compared against the exact reference suffix.
func refRun(t *testing.T, recs []*mrt.Record, mkProber func() Prober) (outs []Outage, incs []Incident, countAt []int) {
	t.Helper()
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	if mkProber != nil {
		d.SetProber(mkProber())
	}
	countAt = make([]int, len(recs)+1)
	for i, r := range recs {
		countAt[i] = len(outs)
		outs = append(outs, d.Process(r)...)
	}
	countAt[len(recs)] = len(outs)
	outs = append(outs, d.Flush(recs[len(recs)-1].Time)...)
	return outs, d.Incidents(), countAt
}

// checkpointEveryBin runs the stream through an engine that captures a
// checkpoint at every BinClosed hook (subject to keep), stopping at the cut
// index without a flush — the kill model. It returns the last kept
// encoding.
func checkpointEveryBin(t *testing.T, recs []*mrt.Record, cut, shards int, mkProber func() Prober, keep func(*Checkpoint) bool) []byte {
	t.Helper()
	dict, cmap, _ := microWorld(t)
	e := NewEngine(DefaultConfig(), dict, cmap, nil, shards)
	defer e.Close()
	if mkProber != nil {
		e.SetProber(mkProber())
	}
	var enc []byte
	e.SetHooks(Hooks{BinClosed: func(end time.Time) {
		c, err := e.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint at %v: %v", end, err)
		}
		if keep != nil && !keep(c) {
			return
		}
		b, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		enc = b
	}})
	for _, r := range recs[:cut] {
		e.Process(r)
	}
	if enc == nil {
		t.Fatal("no checkpoint captured before the cut")
	}
	return enc
}

// restoreAndFinish restores the checkpoint into a pipeline with the given
// shard count (0 selects the sequential Detector), replays the record
// suffix and returns the drained outages plus the full incident log.
func restoreAndFinish(t *testing.T, recs []*mrt.Record, enc []byte, shards int, mkProber func() Prober) ([]Outage, []Incident, *Checkpoint) {
	t.Helper()
	dict, cmap, _ := microWorld(t)
	c, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Records >= uint64(len(recs)) {
		t.Fatalf("checkpoint covers %d of %d records; nothing to re-ingest", c.Records, len(recs))
	}
	var outs []Outage
	var incs []Incident
	suffix := recs[c.Records:]
	last := recs[len(recs)-1].Time
	if shards == 0 {
		d := New(DefaultConfig(), dict, cmap, nil)
		if mkProber != nil {
			d.SetProber(mkProber())
		}
		if err := d.RestoreFrom(c); err != nil {
			t.Fatal(err)
		}
		for _, r := range suffix {
			outs = append(outs, d.Process(r)...)
		}
		outs = append(outs, d.Flush(last)...)
		incs = d.Incidents()
	} else {
		e := NewEngine(DefaultConfig(), dict, cmap, nil, shards)
		defer e.Close()
		if mkProber != nil {
			e.SetProber(mkProber())
		}
		if err := e.RestoreFrom(c); err != nil {
			t.Fatal(err)
		}
		for _, r := range suffix {
			outs = append(outs, e.Process(r)...)
		}
		outs = append(outs, e.Flush(last)...)
		incs = e.Incidents()
	}
	return outs, incs, c
}

// scenarioStream builds the deterministic full-facility-divert stream of
// TestEngineScenario as a record slice: a promoted baseline, a full divert
// raising a PoP-level signal, keepalives that close the signal and verdict
// bins, restoration, and trailing keepalives. failAt is the divert instant.
func scenarioStream() (recs []*mrt.Record, failAt time.Time) {
	emit := func(at time.Time, divert bool) {
		pfx := 0
		for _, near := range []bgp.ASN{11, 12, 13, 14} {
			for k := 0; k < 3; k++ {
				far := bgp.ASN(21 + (pfx % 4))
				prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
				if divert {
					recs = append(recs, mkUpdate(at, near, prefix, bgp.Path{near, 99, far}, nil))
				} else {
					comm := bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
					recs = append(recs, mkUpdate(at, near, prefix, bgp.Path{near, far}, comm))
				}
				pfx++
			}
		}
	}
	ka := func(at time.Time) {
		recs = append(recs, mkUpdate(at, 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
	}
	emit(tBase, false)
	at := tBase.Add(49 * time.Hour)
	ka(at)
	failAt = at.Add(time.Hour)
	emit(failAt, true)
	ka(failAt.Add(90 * time.Second)) // closes the signal bin: outage opens (or parks)
	ka(failAt.Add(4 * time.Minute))  // closes the next bin: probe verdicts collect
	emit(failAt.Add(30*time.Minute), false)
	ka(failAt.Add(32 * time.Minute)) // closes the restoration bin
	ka(failAt.Add(45 * time.Minute))
	return recs, failAt
}

// TestCheckpointRestoreEquivalence is the tentpole contract: a pipeline
// killed mid-stream and restored from its newest bin-barrier checkpoint,
// re-ingesting only the record suffix, emits exactly the outages and
// incidents of an uninterrupted run — across checkpointing and restoring
// shard counts, including the sequential detector.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		recs := genStream(seed, 4000)
		wantOuts, wantIncs, countAt := refRun(t, recs, nil)
		cut := len(recs) * 3 / 4
		enc := checkpointEveryBin(t, recs, cut, 4, nil, nil)
		for _, shards := range []int{0, 1, 4} {
			t.Run(fmt.Sprintf("seed=%d/restore-shards=%d", seed, shards), func(t *testing.T) {
				outs, incs, c := restoreAndFinish(t, recs, enc, shards, nil)
				wantSuffix := wantOuts[countAt[c.Records]:]
				if !reflect.DeepEqual(outs, wantSuffix) {
					t.Errorf("restored run drained %d outages, reference suffix has %d (from record %d)",
						len(outs), len(wantSuffix), c.Records)
				}
				if !reflect.DeepEqual(incs, wantIncs) {
					t.Errorf("restored incident log has %d entries, reference %d", len(incs), len(wantIncs))
				}
			})
		}
	}
}

// TestCheckpointScenarioMidOutage checkpoints while an outage is open (the
// bin after the full-divert signal) and verifies the restored pipeline
// still emits the reference outage with its original start, duration and
// diverted-path accounting.
func TestCheckpointScenarioMidOutage(t *testing.T) {
	recs, failAt := scenarioStream()
	wantOuts, wantIncs, countAt := refRun(t, recs, nil)
	if len(wantOuts) != 1 {
		t.Fatalf("reference run found %d outages, want 1", len(wantOuts))
	}
	// Keep only the signal-bin checkpoint: the outage must be open in it.
	signalEnd := failAt.Add(60 * time.Second)
	enc := checkpointEveryBin(t, recs, len(recs), 4, nil, func(c *Checkpoint) bool {
		return c.BinStart.Equal(signalEnd)
	})
	c, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Open) != 1 || len(c.Open[0].Waiting) != 12 {
		t.Fatalf("checkpoint open outages = %+v, want one with 12 waiting paths", c.Open)
	}
	for _, shards := range []int{0, 2} {
		outs, incs, _ := restoreAndFinish(t, recs, enc, shards, nil)
		if want := wantOuts[countAt[c.Records]:]; !reflect.DeepEqual(outs, want) {
			t.Errorf("shards=%d: restored outages %+v, want %+v", shards, outs, want)
		}
		if !reflect.DeepEqual(incs, wantIncs) {
			t.Errorf("shards=%d: incident log diverges", shards)
		}
	}
}

// TestCheckpointDeterministicEncoding pins the shard-independence of the
// encoding: the sequential detector and engines at several shard counts
// produce byte-identical checkpoints at the same bin barrier. Captures are
// keyed by bin-end time (not hook count: the engine legitimately skips
// idle bin closes that the detector walks through) and taken both with an
// outage open and while it cools.
func TestCheckpointDeterministicEncoding(t *testing.T) {
	recs, failAt := scenarioStream()
	captureAt := map[time.Time]bool{
		failAt.Add(60 * time.Second): true, // signal bin: outage state in flight
		failAt.Add(31 * time.Minute): true, // restoration observed: cooling state
	}
	capture := func(newPipe func(hooks Hooks) (process func(r int), ckpt func() (*Checkpoint, error))) map[time.Time][]byte {
		encs := map[time.Time][]byte{}
		var ckptFn func() (*Checkpoint, error)
		hooks := Hooks{BinClosed: func(end time.Time) {
			if !captureAt[end] {
				return
			}
			c, err := ckptFn()
			if err != nil {
				t.Fatal(err)
			}
			b, err := c.Encode()
			if err != nil {
				t.Fatal(err)
			}
			encs[end] = b
		}}
		process, ckpt := newPipe(hooks)
		ckptFn = ckpt
		for i := range recs {
			process(i)
		}
		if len(encs) != len(captureAt) {
			t.Fatalf("captured %d of %d checkpoints", len(encs), len(captureAt))
		}
		return encs
	}

	dict, cmap, _ := microWorld(t)
	ref := capture(func(hooks Hooks) (func(int), func() (*Checkpoint, error)) {
		d := New(DefaultConfig(), dict, cmap, nil)
		d.SetHooks(hooks)
		return func(i int) { d.Process(recs[i]) }, d.Checkpoint
	})
	for _, shards := range []int{1, 3, 8} {
		got := capture(func(hooks Hooks) (func(int), func() (*Checkpoint, error)) {
			e := NewEngine(DefaultConfig(), dict, cmap, nil, shards)
			t.Cleanup(e.Close)
			e.SetHooks(hooks)
			return func(i int) { e.Process(recs[i]) }, e.Checkpoint
		})
		for at, want := range ref {
			if !bytes.Equal(got[at], want) {
				t.Errorf("shards=%d checkpoint at %v diverges from detector (%d vs %d bytes)",
					shards, at, len(got[at]), len(want))
			}
		}
	}
}

// TestCheckpointMidBinRejected pins the barrier-only contract: with route
// ops applied since the last bin close, per-bin divert state is in flight
// and a checkpoint must be refused rather than silently dropped.
func TestCheckpointMidBinRejected(t *testing.T) {
	recs := genStream(1, 500)
	dict, cmap, _ := microWorld(t)
	e := NewEngine(DefaultConfig(), dict, cmap, nil, 2)
	defer e.Close()
	for _, r := range recs {
		e.Process(r)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("mid-bin engine checkpoint succeeded; want barrier-only error")
	}
	d := New(DefaultConfig(), dict, cmap, nil)
	for _, r := range recs {
		d.Process(r)
	}
	if _, err := d.Checkpoint(); err == nil {
		t.Fatal("mid-bin detector checkpoint succeeded; want barrier-only error")
	}
}

// TestCheckpointRestoreWithProber extends the equivalence to the active
// measurement path: a checkpoint taken at the barrier where the
// confirmation is parked carries it, restore re-submits the campaign to the
// new prober, and the suffix run resolves it exactly as the uninterrupted
// run did.
func TestCheckpointRestoreWithProber(t *testing.T) {
	recs, _ := scenarioStream()
	confirmAll := func() Prober {
		return &scriptedProber{answer: func(req ProbeRequest) []ProbeResult {
			results := make([]ProbeResult, len(req.Candidates))
			for i, c := range req.Candidates {
				results[i] = ProbeResult{Target: c, Confirmed: true, HasData: true}
			}
			return results
		}}
	}
	wantOuts, wantIncs, countAt := refRun(t, recs, confirmAll)
	if len(wantOuts) != 1 {
		t.Fatalf("reference run found %d outages, want 1", len(wantOuts))
	}
	enc := checkpointEveryBin(t, recs, len(recs), 4, confirmAll, func(c *Checkpoint) bool {
		return len(c.Pending) > 0
	})
	c, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Pending) == 0 {
		t.Fatal("kept checkpoint has no pending campaigns")
	}

	// Restore must refuse to half-load a checkpoint whose campaigns have no
	// prober to run on.
	dict, cmap, _ := microWorld(t)
	bare := New(DefaultConfig(), dict, cmap, nil)
	if err := bare.RestoreFrom(c); err == nil {
		t.Fatal("restore with pending campaigns and no prober succeeded")
	}

	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("restore-shards=%d", shards), func(t *testing.T) {
			pr := confirmAll().(*scriptedProber)
			outs, incs, c := restoreAndFinish(t, recs, enc, shards, func() Prober { return pr })
			if len(pr.reqs) == 0 || pr.reqs[0].ID != c.Pending[0].ID {
				t.Fatalf("restore did not re-submit campaign %d first (got %d requests)", c.Pending[0].ID, len(pr.reqs))
			}
			wantSuffix := wantOuts[countAt[c.Records]:]
			if !reflect.DeepEqual(outs, wantSuffix) {
				t.Errorf("restored run drained %d outages, reference suffix has %d", len(outs), len(wantSuffix))
			}
			if !reflect.DeepEqual(incs, wantIncs) {
				t.Errorf("restored incident log has %d entries, reference %d", len(incs), len(wantIncs))
			}
		})
	}
}

// TestCheckpointVersionMismatch pins the refuse-don't-guess rule for
// foreign encodings.
func TestCheckpointVersionMismatch(t *testing.T) {
	c := &Checkpoint{Version: CheckpointVersion + 1}
	b, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(b); err == nil {
		t.Fatal("decode accepted a future checkpoint version")
	}
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	if err := d.RestoreFrom(c); err == nil {
		t.Fatal("restore accepted a future checkpoint version")
	}
	e := NewEngine(DefaultConfig(), dict, cmap, nil, 2)
	defer e.Close()
	if err := e.RestoreFrom(c); err == nil {
		t.Fatal("engine restore accepted a future checkpoint version")
	}
}

// TestRestoreAfterProcessRejected pins that RestoreFrom is a boot-time
// operation only.
func TestRestoreAfterProcessRejected(t *testing.T) {
	recs := genStream(1, 50)
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	d.Process(recs[0])
	if err := d.RestoreFrom(&Checkpoint{Version: CheckpointVersion}); err == nil {
		t.Fatal("restore after Process succeeded")
	}
}
