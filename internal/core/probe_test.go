package core

import (
	"net/netip"
	"sort"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
)

// scriptedProber is a deterministic in-process Prober: Submit records the
// campaign and, unless hold is set, synthesizes a verdict via the answer
// function; Collect drains completed verdicts sorted by id.
type scriptedProber struct {
	answer func(ProbeRequest) []ProbeResult
	hold   bool // never answer: exercises the TTL path
	reqs   []ProbeRequest
	ready  []ProbeVerdict
}

func (p *scriptedProber) Submit(req ProbeRequest) {
	p.reqs = append(p.reqs, req)
	if p.hold {
		return
	}
	results := make([]ProbeResult, len(req.Candidates))
	for i, c := range req.Candidates {
		results[i] = ProbeResult{Target: c}
	}
	if p.answer != nil {
		results = p.answer(req)
	}
	p.ready = append(p.ready, ProbeVerdict{ID: req.ID, Results: results})
}

func (p *scriptedProber) Collect(time.Time) []ProbeVerdict {
	out := p.ready
	p.ready = nil
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// divertAll re-announces every seeded path around the facility, raising the
// full-divergence signal of TestStablePromotionAndSignal.
func divertAll(t *testing.T, d *Detector, at time.Time, nPer int) {
	t.Helper()
	pfx := 0
	for _, near := range []bgp.ASN{11, 12, 13, 14} {
		for k := 0; k < nPer; k++ {
			far := bgp.ASN(21 + (pfx % 4))
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
			d.Process(mkUpdate(at, near, prefix, bgp.Path{near, 99, far}, nil))
			pfx++
		}
	}
}

func keepalive(d *Detector, at time.Time) {
	d.Process(mkUpdate(at, 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
}

// TestProbeParkAndPromote pins the async happy path: the signal bin parks a
// confirmation campaign instead of opening an outage; the verdict promotes
// it at the next bin close with the original signal timing, firing the
// probe-requested and probe-confirmed hooks around the outage-opened hook.
func TestProbeParkAndPromote(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	pr := &scriptedProber{answer: func(req ProbeRequest) []ProbeResult {
		out := make([]ProbeResult, len(req.Candidates))
		for i, c := range req.Candidates {
			out[i] = ProbeResult{Target: c, Confirmed: true, HasData: true}
		}
		return out
	}}
	d.SetProber(pr)

	var requested []PendingConfirmation
	var outcomes []ProbeOutcome
	var opened []OutageStatus
	d.SetHooks(Hooks{
		ProbeRequested: func(p PendingConfirmation) { requested = append(requested, p) },
		ProbeConfirmed: func(o ProbeOutcome) { outcomes = append(outcomes, o) },
		OutageOpened: func(s OutageStatus) {
			if len(outcomes) == 0 {
				t.Error("OutageOpened fired before ProbeConfirmed")
			}
			opened = append(opened, s)
		},
	})

	at := seedStable(t, d, 3)
	failAt := at.Add(time.Hour)
	divertAll(t, d, failAt, 3)
	keepalive(d, failAt.Add(90*time.Second)) // closes the signal bin

	if len(pr.reqs) != 1 {
		t.Fatalf("campaigns submitted = %d, want 1", len(pr.reqs))
	}
	req := pr.reqs[0]
	if req.Epicenter != colo.FacilityPoP(fid) {
		t.Fatalf("campaign epicenter = %v, want facility:%d", req.Epicenter, fid)
	}
	if len(requested) != 1 || requested[0].ID != req.ID {
		t.Fatalf("ProbeRequested hooks = %+v", requested)
	}
	if got := d.PendingConfirmations(); len(got) != 1 || got[0].Paths != 12 {
		t.Fatalf("pending = %+v, want one 12-path confirmation", got)
	}
	if n := len(d.OpenOutages()); n != 0 {
		t.Fatalf("outage opened before the verdict arrived (%d open)", n)
	}

	// Next bin close collects the verdict and promotes.
	keepalive(d, failAt.Add(3*time.Minute))
	if len(d.PendingConfirmations()) != 0 {
		t.Fatal("pending not drained after verdict")
	}
	if len(outcomes) != 1 || !outcomes[0].Located || !outcomes[0].Confirmed || !outcomes[0].Checked {
		t.Fatalf("outcome = %+v, want located+confirmed", outcomes)
	}
	if len(opened) != 1 || opened[0].PoP != colo.FacilityPoP(fid) {
		t.Fatalf("opened = %+v, want facility:%d", opened, fid)
	}
	// The promoted outage keeps the original signal timing: it began within
	// the bin that raised the signal, not the bin that delivered the verdict.
	sigBin := failAt.Truncate(time.Minute).Add(time.Minute)
	if want := sigBin.Add(-time.Minute); !opened[0].Start.Equal(want) {
		t.Fatalf("promoted Start = %v, want %v", opened[0].Start, want)
	}
}

// TestProbeRefutedSuppresses pins the false-positive filter: a verdict that
// contradicts the control plane drops the parked group without an outage.
func TestProbeRefutedSuppresses(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	pr := &scriptedProber{answer: func(req ProbeRequest) []ProbeResult {
		out := make([]ProbeResult, len(req.Candidates))
		for i, c := range req.Candidates {
			out[i] = ProbeResult{Target: c, Confirmed: false, HasData: true}
		}
		return out
	}}
	d.SetProber(pr)
	var outcomes []ProbeOutcome
	d.SetHooks(Hooks{ProbeConfirmed: func(o ProbeOutcome) { outcomes = append(outcomes, o) }})

	at := seedStable(t, d, 3)
	divertAll(t, d, at.Add(time.Hour), 3)
	keepalive(d, at.Add(time.Hour+90*time.Second))
	keepalive(d, at.Add(time.Hour+3*time.Minute))

	if len(outcomes) != 1 || outcomes[0].Located || !outcomes[0].Checked {
		t.Fatalf("outcome = %+v, want checked+unlocated", outcomes)
	}
	if n := len(d.OpenOutages()); n != 0 {
		t.Fatalf("refuted signal still opened %d outages", n)
	}
	outs := d.Flush(at.Add(2 * time.Hour))
	if len(outs) != 0 {
		t.Fatalf("refuted signal produced outages at flush: %+v", outs)
	}
}

// TestProbeNoDataPromotesUnvalidated pins the budget-exhaustion shape: a
// verdict with no measurement data leaves the control-plane inference
// standing, exactly as the synchronous path does when Confirm has no data.
func TestProbeNoDataPromotesUnvalidated(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	pr := &scriptedProber{} // default answer: HasData=false everywhere
	d.SetProber(pr)

	at := seedStable(t, d, 3)
	divertAll(t, d, at.Add(time.Hour), 3)
	keepalive(d, at.Add(time.Hour+90*time.Second))
	keepalive(d, at.Add(time.Hour+3*time.Minute))

	open := d.OpenOutageStatuses()
	if len(open) != 1 || open[0].PoP != colo.FacilityPoP(fid) {
		t.Fatalf("open = %+v, want facility:%d", open, fid)
	}
	if open[0].Confirmed {
		t.Fatal("no-data promotion must stay unconfirmed")
	}
	outs := d.Flush(at.Add(2 * time.Hour))
	if len(outs) != 1 || outs[0].DataPlaneChecked || outs[0].Confirmed {
		t.Fatalf("flush = %+v, want one unvalidated outage", outs)
	}
}

// TestProbeTTLExpiry is the dedicated TTL scenario: a prober that never
// answers lets the pending outlive ProbeTTL, after which it expires with a
// hook and no outage — and the pipeline keeps running normally.
func TestProbeTTLExpiry(t *testing.T) {
	dict, cmap, _ := microWorld(t)
	cfg := DefaultConfig()
	cfg.ProbeTTL = 5 * time.Minute
	d := New(cfg, dict, cmap, nil)
	pr := &scriptedProber{hold: true}
	d.SetProber(pr)
	var expired []ProbeOutcome
	d.SetHooks(Hooks{ProbeExpired: func(o ProbeOutcome) { expired = append(expired, o) }})

	at := seedStable(t, d, 3)
	failAt := at.Add(time.Hour)
	divertAll(t, d, failAt, 3)
	keepalive(d, failAt.Add(90*time.Second))
	if len(d.PendingConfirmations()) != 1 {
		t.Fatal("campaign not parked")
	}

	// Under the TTL: still pending.
	keepalive(d, failAt.Add(4*time.Minute))
	if len(expired) != 0 || len(d.PendingConfirmations()) != 1 {
		t.Fatalf("expired early: hooks=%d pending=%d", len(expired), len(d.PendingConfirmations()))
	}
	// Past it: expired, dropped, nothing reported.
	keepalive(d, failAt.Add(8*time.Minute))
	if len(expired) != 1 || !expired[0].Expired || expired[0].Located {
		t.Fatalf("expiry outcome = %+v", expired)
	}
	if len(d.PendingConfirmations()) != 0 {
		t.Fatal("expired pending not dropped")
	}
	outs := d.Flush(failAt.Add(time.Hour))
	if len(outs) != 0 {
		t.Fatalf("expired signal produced outages: %+v", outs)
	}
}

// TestProbeFlushSettles pins that Flush collects the final bin's campaigns
// before closing: a signal in the last bin of the stream still reaches the
// outage set when the prober answers.
func TestProbeFlushSettles(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	pr := &scriptedProber{answer: func(req ProbeRequest) []ProbeResult {
		out := make([]ProbeResult, len(req.Candidates))
		for i, c := range req.Candidates {
			out[i] = ProbeResult{Target: c, Confirmed: true, HasData: true}
		}
		return out
	}}
	d.SetProber(pr)

	at := seedStable(t, d, 3)
	failAt := at.Add(time.Hour)
	divertAll(t, d, failAt, 3)
	// No further records: the campaign parks inside Flush's own bin close.
	outs := d.Flush(failAt.Add(2 * time.Minute))
	if len(outs) != 1 || outs[0].PoP != colo.FacilityPoP(fid) || !outs[0].Confirmed {
		t.Fatalf("flush = %+v, want one confirmed outage at facility:%d", outs, fid)
	}
}

// TestAffectedFractionDedup is the regression for the stable-count
// accounting: duplicate divert events of one (path, link) — a path
// oscillating within the bin — must not inflate the affected fraction.
func TestAffectedFractionDedup(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	seedStable(t, d, 3)

	pop := colo.FacilityPoP(fid)
	// One real diverted path, duplicated three times in the bin's records.
	rec := divertRec{
		key:  PathKey{Peer: 11, Prefix: netip.MustParsePrefix("20.0.0.0/24")},
		ends: popEnd{near: 11, far: 21},
	}
	g := mkGroup(pop, []divertRec{rec, rec, rec})

	frac, n := d.inv.affectedFractionWithFarAt(g, fid)
	if n == 0 {
		t.Fatal("no stable baseline at the facility")
	}
	// 12 stable paths were seeded with far ends in the facility; exactly one
	// distinct path diverted.
	if want := 1.0 / 12.0; frac != want {
		t.Fatalf("fraction = %v, want %v (duplicates must count once)", frac, want)
	}
}
