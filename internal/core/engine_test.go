package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/mrt"
)

// genStream builds a seeded pseudo-random record stream over the
// microWorld: tagged announcements, diverting re-announcements,
// withdrawals, session flaps and untagged noise, spread over several days
// so stability promotion, binning, restoration and oscillation merging all
// trigger.
func genStream(seed int64, n int) []*mrt.Record {
	rng := rand.New(rand.NewSource(seed))
	nears := []bgp.ASN{11, 12, 13, 14}
	var recs []*mrt.Record
	at := tBase

	prefix := func(near bgp.ASN, i int) string {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(near), byte(i), 0}), 24).String()
	}

	// Seed a healthy tagged baseline so diverts have a stable set to leave.
	for _, near := range nears {
		for i := 0; i < 12; i++ {
			far := bgp.ASN(21 + i%4)
			comm := bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
			recs = append(recs, mkUpdate(at, near, prefix(near, i), bgp.Path{near, far}, comm))
		}
	}
	at = at.Add(49 * time.Hour) // past the stability window

	down := map[bgp.ASN]bool{}
	for len(recs) < n {
		at = at.Add(time.Duration(rng.Intn(90)+1) * time.Second)
		near := nears[rng.Intn(len(nears))]
		i := rng.Intn(12)
		far := bgp.ASN(21 + i%4)
		switch rng.Intn(10) {
		case 0, 1, 2: // healthy tagged (re-)announcement / restoration
			comm := bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
			recs = append(recs, mkUpdate(at, near, prefix(near, i), bgp.Path{near, far}, comm))
		case 3, 4, 5: // divert: path avoids the facility, community gone
			recs = append(recs, mkUpdate(at, near, prefix(near, i), bgp.Path{near, 99, far}, nil))
		case 6: // explicit withdrawal
			recs = append(recs, mkWithdraw(at, near, prefix(near, i)))
		case 7: // session flap
			state := mrt.StateIdle
			if down[near] {
				state = mrt.StateEstablished
			}
			down[near] = !down[near]
			recs = append(recs, &mrt.Record{
				Time: at, Kind: mrt.KindState, Collector: "rrc00", PeerAS: near,
				OldState: mrt.StateEstablished, NewState: state,
			})
		case 8: // untagged noise from an uncovered vantage
			recs = append(recs, mkUpdate(at, 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
		case 9: // long quiet gap to exercise bin fast-forward
			at = at.Add(time.Duration(rng.Intn(5000)) * time.Second)
			recs = append(recs, mkUpdate(at, 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
		}
	}
	return recs
}

// runDetector replays the stream through the sequential pipeline.
func runDetector(t *testing.T, recs []*mrt.Record, dp DataPlane) ([]Outage, []Incident) {
	t.Helper()
	dict, cmap, _ := microWorld(t)
	d := New(DefaultConfig(), dict, cmap, nil)
	if dp != nil {
		d.SetDataPlane(dp)
	}
	var outs []Outage
	for _, r := range recs {
		outs = append(outs, d.Process(r)...)
	}
	outs = append(outs, d.Flush(recs[len(recs)-1].Time)...)
	return outs, d.Incidents()
}

// runEngine replays the stream through the sharded pipeline.
func runEngine(t *testing.T, recs []*mrt.Record, dp DataPlane, shards int) ([]Outage, []Incident) {
	t.Helper()
	dict, cmap, _ := microWorld(t)
	e := NewEngine(DefaultConfig(), dict, cmap, nil, shards)
	defer e.Close()
	if dp != nil {
		e.SetDataPlane(dp)
	}
	var outs []Outage
	for _, r := range recs {
		outs = append(outs, e.Process(r)...)
	}
	outs = append(outs, e.Flush(recs[len(recs)-1].Time)...)
	return outs, e.Incidents()
}

// TestEngineMatchesDetectorRandomized is the refactor's correctness
// contract: for any record stream, the sharded engine must emit exactly
// the same outages and incidents as the sequential detector, at every
// shard count.
func TestEngineMatchesDetectorRandomized(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		recs := genStream(seed, 4000)
		wantOuts, wantIncs := runDetector(t, recs, nil)
		for _, shards := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				gotOuts, gotIncs := runEngine(t, recs, nil, shards)
				if !reflect.DeepEqual(gotOuts, wantOuts) {
					t.Errorf("outages diverge:\n engine:   %+v\n detector: %+v", gotOuts, wantOuts)
				}
				if !reflect.DeepEqual(gotIncs, wantIncs) {
					t.Errorf("incidents diverge:\n engine:   %+v\n detector: %+v", gotIncs, wantIncs)
				}
			})
		}
	}
}

// countingDP confirms everything and counts calls: the engine must consult
// the data plane for exactly the same probes in the same order.
type countingDP struct{ calls int }

func (c *countingDP) Confirm(colo.PoP, time.Time) (bool, bool) {
	c.calls++
	return true, true
}

func TestEngineMatchesDetectorWithDataPlane(t *testing.T) {
	recs := genStream(7, 4000)
	seqDP := &countingDP{}
	wantOuts, wantIncs := runDetector(t, recs, seqDP)
	for _, shards := range []int{2, 8} {
		dp := &countingDP{}
		gotOuts, gotIncs := runEngine(t, recs, dp, shards)
		if !reflect.DeepEqual(gotOuts, wantOuts) {
			t.Errorf("shards=%d: outages diverge", shards)
		}
		if !reflect.DeepEqual(gotIncs, wantIncs) {
			t.Errorf("shards=%d: incidents diverge", shards)
		}
		if dp.calls != seqDP.calls {
			t.Errorf("shards=%d: data-plane probes = %d, detector issued %d", shards, dp.calls, seqDP.calls)
		}
	}
}

// TestEngineScenario replays the deterministic restoration scenario of
// TestOutageRestorationAndDuration through the engine: same epicenter,
// duration and diverted-path accounting.
func TestEngineScenario(t *testing.T) {
	dict, cmap, fid := microWorld(t)
	e := NewEngine(DefaultConfig(), dict, cmap, nil, 4)
	defer e.Close()

	at := tBase
	pfx := 0
	announce := func(at time.Time, via func(near, far bgp.ASN) (bgp.Path, bgp.Communities)) {
		pfx = 0
		for _, near := range []bgp.ASN{11, 12, 13, 14} {
			for k := 0; k < 3; k++ {
				far := bgp.ASN(21 + (pfx % 4))
				prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(pfx >> 8), byte(pfx), 0}), 24).String()
				path, comm := via(near, far)
				e.Process(mkUpdate(at, near, prefix, path, comm))
				pfx++
			}
		}
	}
	tagged := func(near, far bgp.ASN) (bgp.Path, bgp.Communities) {
		return bgp.Path{near, far}, bgp.Communities{bgp.MakeCommunity(uint16(near), 51001)}
	}
	diverted := func(near, far bgp.ASN) (bgp.Path, bgp.Communities) {
		return bgp.Path{near, 99, far}, nil
	}

	announce(at, tagged)
	at = tBase.Add(49 * time.Hour)
	e.Process(mkUpdate(at, 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))

	failAt := at.Add(time.Hour)
	announce(failAt, diverted)
	e.Process(mkUpdate(failAt.Add(90*time.Second), 99, "198.41.0.0/16", bgp.Path{99, 98}, nil))
	announce(failAt.Add(30*time.Minute), tagged)

	outs := e.Flush(failAt.Add(30 * time.Minute).Add(time.Hour))
	if len(outs) != 1 {
		t.Fatalf("outages = %+v", outs)
	}
	o := outs[0]
	if o.PoP != colo.FacilityPoP(fid) {
		t.Errorf("epicenter = %v", o.PoP)
	}
	if d := o.Duration(); d < 25*time.Minute || d > 40*time.Minute {
		t.Errorf("duration = %v, want ~30m", d)
	}
	if o.DivertedPaths != 12 {
		t.Errorf("diverted paths = %d, want 12", o.DivertedPaths)
	}

	stats := e.Stats()
	if stats.Records == 0 || stats.Ops == 0 || stats.Bins == 0 {
		t.Errorf("ingest stats not collected: %+v", stats)
	}
}
