package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"kepler/internal/as2org"
	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/metrics"
	"kepler/internal/mrt"
)

// engineBatchSize is how many route ops accumulate per shard before a
// batch is shipped to its worker; barriers flush partial batches.
const engineBatchSize = 256

// engineQueueLen is the per-shard channel depth, in batches.
const engineQueueLen = 64

// shardMsg is one unit on a shard worker's queue: an op batch, optionally
// followed by a bin barrier.
type shardMsg struct {
	ops     []bgpstream.RouteOp
	barrier *binBarrier
}

// binBarrier synchronizes all shards at a bin boundary: each worker runs
// its due promotions, reports ready, and blocks until the investigator —
// which owns shard state outright while they are paused — releases it.
type binBarrier struct {
	end    time.Time
	ready  sync.WaitGroup
	resume chan struct{}
}

// engineShard couples a path-state shard with its worker goroutine. free
// carries fully consumed op slabs back to the dispatcher for reuse, so
// steady-state batching stops allocating a fresh slice per batch.
type engineShard struct {
	ps   *pathShard
	in   chan shardMsg
	free chan []bgpstream.RouteOp
	done chan struct{}
}

func (s *engineShard) run() {
	defer close(s.done)
	for msg := range s.in {
		for i := range msg.ops {
			s.ps.apply(&msg.ops[i])
		}
		if msg.ops != nil {
			// Hand the consumed slab back without ever blocking; a full
			// free queue just lets this one go to the GC.
			select {
			case s.free <- msg.ops[:0]:
			default:
			}
		}
		if b := msg.barrier; b != nil {
			s.ps.runPromotions(b.end)
			b.ready.Done()
			<-b.resume
		}
	}
}

// mergedView backs the investigator's state view with an on-demand merge
// across shards. It is only consulted between a barrier's ready and resume
// points, while every shard worker is paused, so the raw maps are safe to
// read. Merged maps are cached per bin close and dropped before resume; mu
// guards the cache against concurrent investigation workers (the shard
// maps themselves are only read).
type mergedView struct {
	shards []*engineShard
	mu     sync.Mutex
	cache  map[colo.PoP]map[bgp.ASN]map[PathKey]popEnd
}

func (v *mergedView) stableAt(pop colo.PoP) map[bgp.ASN]map[PathKey]popEnd {
	v.mu.Lock()
	if m, ok := v.cache[pop]; ok {
		v.mu.Unlock()
		return m
	}
	v.mu.Unlock()
	var single map[bgp.ASN]map[PathKey]popEnd
	contributors := 0
	for _, s := range v.shards {
		if m := s.ps.stable[pop]; len(m) > 0 {
			contributors++
			single = m
		}
	}
	var out map[bgp.ASN]map[PathKey]popEnd
	switch contributors {
	case 0:
	case 1:
		out = single
	default:
		out = make(map[bgp.ASN]map[PathKey]popEnd)
		for _, s := range v.shards {
			for near, set := range s.ps.stable[pop] {
				dst := out[near]
				if dst == nil {
					dst = make(map[PathKey]popEnd, len(set))
					out[near] = dst
				}
				for key, ends := range set {
					dst[key] = ends
				}
			}
		}
	}
	v.mu.Lock()
	// Two workers may race to merge the same PoP; both build identical
	// read-only maps, so last-write-wins is fine.
	v.cache[pop] = out
	v.mu.Unlock()
	return out
}

func (v *mergedView) pathsContaining(a bgp.ASN) int {
	n := 0
	for _, s := range v.shards {
		n += s.ps.pathsContaining[a]
	}
	return n
}

func (v *mergedView) reset() {
	v.mu.Lock()
	v.cache = make(map[colo.PoP]map[bgp.ASN]map[PathKey]popEnd)
	v.mu.Unlock()
}

// Engine is the sharded concurrent Kepler pipeline: a fan-out stage routes
// each record's path-level ops to N shard workers that own disjoint hash
// partitions of the per-path monitoring state, and a bin-synchronized
// investigator merges the shards' divert records and stable-baseline views
// at every 60 s bin close to run the Section 4.3 signal investigation
// unchanged. For any record stream the engine emits exactly the same
// Outages and Incidents as the sequential Detector; Detector remains the
// zero-goroutine N=1 compatibility path.
type Engine struct {
	cfg    Config
	inv    *investigator
	view   *mergedView
	shards []*engineShard
	// shardStates mirrors shards for the shared closeBinOver sequence.
	shardStates []*pathShard
	fan         *bgpstream.Fanout
	clock       binClock

	// opsSinceBarrier lets idle bins skip the full barrier handshake: with
	// no ops dispatched and no outage state in flight, a bin close is a
	// provable no-op.
	opsSinceBarrier bool
	stats           metrics.IngestStats

	// seen counts records fed to Process over the pipeline's whole life
	// (seeded by RestoreFrom); inProcess marks that a Process call is on
	// the stack, so a checkpoint taken from inside a BinClosed hook knows
	// the in-flight record's effects are not yet included. inBarrier and
	// barrierEnd scope the bin-barrier window in which shard state may be
	// read directly.
	seen       uint64
	inProcess  bool
	inBarrier  bool
	barrierEnd time.Time

	// lifecycle serializes Flush against Close so a daemon's shutdown path
	// can race the two safely; closeOnce makes Close idempotent. Process
	// remains single-goroutine and must happen-before any Flush or Close.
	lifecycle sync.Mutex
	closeOnce sync.Once
	closed    bool
}

// NewEngine builds a sharded engine with the given number of shard
// workers; shards <= 0 selects GOMAXPROCS. orgs may be nil. Call Close
// when done to stop the workers.
func NewEngine(cfg Config, dict *communities.Dictionary, cmap *colo.Map, orgs *as2org.Table, shards int) *Engine {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:   cfg,
		fan:   bgpstream.NewFanout(shards),
		clock: binClock{interval: cfg.BinInterval},
	}
	e.shards = make([]*engineShard, shards)
	e.shardStates = make([]*pathShard, shards)
	for i := range e.shards {
		e.shards[i] = &engineShard{
			ps:   newPathShard(cfg, dict, cmap),
			in:   make(chan shardMsg, engineQueueLen),
			free: make(chan []bgpstream.RouteOp, engineQueueLen+1),
			done: make(chan struct{}),
		}
		e.shardStates[i] = e.shards[i].ps
	}
	e.view = &mergedView{shards: e.shards}
	e.view.reset()
	e.inv = newInvestigator(cfg, cmap, orgs, e.view)
	if cfg.FeedSilence > 0 {
		e.inv.feed = bgpstream.NewFeedWatchdog(cfg.FeedSilence)
	}
	for _, s := range e.shards {
		go s.run()
	}
	return e
}

// Shards returns the number of shard workers.
func (e *Engine) Shards() int { return len(e.shards) }

// SetDataPlane wires the synchronous targeted-measurement backend. It must
// be called before the first Process.
func (e *Engine) SetDataPlane(dp DataPlane) { e.inv.dp = dp }

// SetProber wires the asynchronous probe scheduler: epicenter confirmation
// becomes a deferred campaign whose verdict is collected at a later bin
// barrier (see Prober and PendingConfirmation). Mutually exclusive with
// SetDataPlane; it must be called before the first Process.
func (e *Engine) SetProber(p Prober) { e.inv.prober = p }

// PendingConfirmations snapshots the signal groups parked behind probe
// campaigns, ascending by campaign id. Only valid between Process calls or
// inside a BinClosed hook.
func (e *Engine) PendingConfirmations() []PendingConfirmation { return e.inv.pendingStatuses() }

// SetHooks installs lifecycle callbacks (see Hooks). It must be called
// before the first Process.
func (e *Engine) SetHooks(h Hooks) { e.inv.hooks = h }

// SetBinStageStats installs the staged bin-close latency collector: every
// non-idle bin close records per-stage wall-clock spans (barrier wait,
// divert merge, probe collection, classification, shard finish, hooks) into
// s. Purely observational. It must be called before the first Process.
func (e *Engine) SetBinStageStats(s *metrics.BinStageStats) { e.inv.binStage = s }

// Process feeds one record (records must arrive in non-decreasing time
// order) and returns any outages that completed at bin boundaries crossed
// by this record.
func (e *Engine) Process(rec *mrt.Record) []Outage {
	e.stats.Begin()
	e.stats.Records.Add(1)
	e.seen++
	e.inProcess = true
	e.clock.advance(rec.Time, e.closeBin)
	if e.inv.feed != nil {
		// After the bin closes preceding this record: its liveness proof
		// belongs to the bin it falls into, matching the Detector exactly.
		e.inv.feed.Observe(rec)
	}
	if n := e.fan.Add(rec); n > 0 {
		e.opsSinceBarrier = true
		e.stats.Ops.Add(int64(n))
	}
	for i := range e.shards {
		if e.fan.Pending(i) >= engineBatchSize {
			s := e.shards[i]
			s.in <- shardMsg{ops: e.fan.Take(i)}
			e.reclaim(i)
		}
	}
	e.inProcess = false
	return e.inv.drainCompleted()
}

// reclaim recycles one consumed op slab (if a worker has returned any) into
// shard i's fan-out accumulation buffer.
func (e *Engine) reclaim(i int) {
	select {
	case buf := <-e.shards[i].free:
		e.fan.Recycle(i, buf)
	default:
	}
}

// closeBin executes the barrier protocol for one bin boundary: flush
// pending ops, pause every shard after its due promotions, reconcile path
// returns, run the investigation over the merged divert and stable views,
// tick outage tracking, redistribute restoration watches, and release the
// shards (which then drop their diverted paths from the stable baseline).
func (e *Engine) closeBin(end time.Time) {
	if !e.opsSinceBarrier && e.inv.tracker.idle() && !e.inv.hasPending() && !e.inv.feedDue(end) {
		return // nothing processed, tracked, parked or feed-due: the close is a no-op
	}
	t0 := time.Now() //keplervet:ignore walltime metrics span: barrier wall-time for IngestStats, never read by detection
	b := &binBarrier{end: end, resume: make(chan struct{})}
	b.ready.Add(len(e.shards))
	for i, s := range e.shards {
		s.in <- shardMsg{ops: e.fan.Take(i), barrier: b}
	}
	b.ready.Wait()

	// Shards are paused: the investigator owns their state until resume.
	// inBarrier additionally licenses a Checkpoint taken from inside the
	// BinClosed hook to read shard state directly.
	e.inBarrier = true
	e.barrierEnd = end
	var diverted map[colo.PoP]map[bgp.ASN][]divertRec
	if e.inv.binStage != nil {
		e.inv.engineBarrier = time.Since(t0) //keplervet:ignore walltime metrics span: staged bin-close histogram stamp
		tm := time.Now()                     //keplervet:ignore walltime metrics span: staged bin-close histogram stamp
		diverted = e.mergeDiverted()
		e.inv.engineMerge = time.Since(tm) //keplervet:ignore walltime metrics span: staged bin-close histogram stamp
	} else {
		diverted = e.mergeDiverted()
	}
	e.inv.closeBinOver(end, e.shardStates, diverted, func(k PathKey) int {
		return e.fan.ShardOf(k.Peer, k.Prefix)
	})
	e.inBarrier = false
	e.view.reset()
	close(b.resume)
	for i := range e.shards {
		e.reclaim(i)
	}

	e.opsSinceBarrier = false
	e.stats.Bins.Add(1)
	e.stats.BarrierNanos.Add(time.Since(t0).Nanoseconds()) //keplervet:ignore walltime metrics span: barrier wall-time counter, never read by detection
}

// mergeDiverted combines the shards' current-bin divert indexes. Slices
// are ordered by global op sequence so the merged index is exactly the one
// the sequential detector would have built.
func (e *Engine) mergeDiverted() map[colo.PoP]map[bgp.ASN][]divertRec {
	var single *pathShard
	contributors := 0
	for _, s := range e.shards {
		if len(s.ps.diverted) > 0 {
			contributors++
			single = s.ps
		}
	}
	switch contributors {
	case 0:
		return nil
	case 1:
		// A lone contributor's slices are already in op order; the map is
		// only read until the shards resume (finishBin replaces it).
		return single.diverted
	}
	merged := make(map[colo.PoP]map[bgp.ASN][]divertRec)
	for _, s := range e.shards {
		for pop, byNear := range s.ps.diverted {
			dst := merged[pop]
			if dst == nil {
				dst = make(map[bgp.ASN][]divertRec)
				merged[pop] = dst
			}
			for near, recs := range byNear {
				dst[near] = append(dst[near], recs...)
			}
		}
	}
	for _, byNear := range merged {
		for _, recs := range byNear {
			sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
		}
	}
	return merged
}

// Flush closes the current bin and any open outages as of the given time,
// returning all remaining completed outages. The engine stays usable for
// further records afterwards. Flush is safe to call concurrently with
// Close: after Close it only drains already-completed outages.
func (e *Engine) Flush(asOf time.Time) []Outage {
	e.lifecycle.Lock()
	defer e.lifecycle.Unlock()
	if e.closed {
		// The shard workers are gone, so no further bin can close; anything
		// that completed before Close is still drainable.
		return e.inv.drainCompleted()
	}
	e.clock.advance(asOf.Add(e.cfg.BinInterval), e.closeBin)
	e.inv.finishProbes(asOf)
	e.inv.tracker.closeAll(asOf)
	e.inv.tracker.drainCooling(e.inv)
	return e.inv.drainCompleted()
}

// Incidents returns every classified signal so far. Only valid between
// Process calls (the investigator appends at bin boundaries).
func (e *Engine) Incidents() []Incident { return e.inv.incidents }

// OpenOutages returns the PoPs with ongoing outages.
func (e *Engine) OpenOutages() []colo.PoP { return e.inv.tracker.open() }

// OpenOutageStatuses snapshots every ongoing outage, sorted by epicenter.
// Only valid between Process calls or inside a BinClosed hook.
func (e *Engine) OpenOutageStatuses() []OutageStatus { return e.inv.tracker.openStatuses() }

// SessionTracker exposes the fan-out's session tracker.
func (e *Engine) SessionTracker() *bgpstream.SessionTracker { return e.fan.Tracker() }

// FeedHealth snapshots the feed watchdog as of asOf (normally the last
// closed bin). ok is false when Config.FeedSilence is zero. Only valid
// between Process calls or inside a BinClosed hook.
func (e *Engine) FeedHealth(asOf time.Time) (snap bgpstream.FeedSnapshot, ok bool) {
	if e.inv.feed == nil {
		return bgpstream.FeedSnapshot{}, false
	}
	return e.inv.feed.Snapshot(asOf), true
}

// Stats snapshots the engine's ingestion counters, including per-shard
// queue depths (in batches).
func (e *Engine) Stats() metrics.IngestSnapshot {
	depths := make([]int, len(e.shards))
	for i, s := range e.shards {
		depths[i] = len(s.in)
	}
	return e.stats.Snapshot(depths)
}

// Checkpoint captures the engine's complete detection state. It is valid
// at bin barriers only: call it either from inside a BinClosed hook (the
// shards are paused and the investigator's bin is fully closed) or between
// Process calls while no route ops have been dispatched since the last bin
// close — any other instant has per-bin divert state in flight that a
// checkpoint does not carry, and is rejected.
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	records := e.seen
	if e.inProcess {
		// The in-flight record's ops apply after the barrier: its effects
		// are not part of this checkpoint, so recovery re-reads it.
		records--
	}
	if e.inBarrier {
		return captureCheckpoint(e.barrierEnd, records, e.fan, e.shardStates, e.inv), nil
	}
	if e.opsSinceBarrier {
		return nil, fmt.Errorf("core: Checkpoint outside a bin barrier with ops in flight; checkpoint from a BinClosed hook")
	}
	// No ops were added since the last barrier, so every shard queue is
	// empty and the workers are idle: the state is exactly the barrier
	// state and safe to read from here.
	return captureCheckpoint(e.clock.start, records, e.fan, e.shardStates, e.inv), nil
}

// RestoreFrom loads a checkpoint produced by Checkpoint (on an Engine or
// Detector of any shard count): the next Process call continues exactly
// where the checkpointed pipeline stopped, so re-ingesting the record
// suffix after Checkpoint.Records reproduces the uninterrupted run's output
// and hook sequence byte for byte. It must be called before the first
// Process, after SetProber when the checkpoint carries pending campaigns
// (they are re-submitted here, without re-firing ProbeRequested hooks).
func (e *Engine) RestoreFrom(c *Checkpoint) error {
	if e.seen != 0 || !e.clock.start.IsZero() {
		return fmt.Errorf("core: RestoreFrom must precede the first Process")
	}
	if err := restoreCheckpoint(c, e.cfg, e.shardStates, e.inv, func(k PathKey) int {
		return e.fan.ShardOf(k.Peer, k.Prefix)
	}); err != nil {
		return err
	}
	e.clock.start = c.BinStart
	e.fan.RestoreSeq(c.OpSeq)
	e.fan.Tracker().Restore(c.Sessions)
	e.seen = c.Records
	return nil
}

// Close stops the shard workers and waits for them to exit. Close is
// idempotent and safe to call concurrently with Flush (daemon shutdown
// paths race the two); Process must not be called afterwards.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.lifecycle.Lock()
		defer e.lifecycle.Unlock()
		e.closed = true
		for _, s := range e.shards {
			close(s.in)
		}
		for _, s := range e.shards {
			<-s.done
		}
	})
}
