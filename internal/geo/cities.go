package geo

import "sync"

var (
	defaultWorldOnce sync.Once
	defaultWorld     *World
)

// DefaultWorld returns the built-in gazetteer of major interconnection
// cities. The set is intentionally Europe- and North-America-heavy, matching
// the geographic skew of the peering ecosystem the paper documents
// (Section 3.2: 66% of location communities tag Europe, 24.5% North
// America). The returned World is shared and immutable.
func DefaultWorld() *World {
	defaultWorldOnce.Do(func() {
		defaultWorld = NewWorld(gazetteer)
	})
	return defaultWorld
}

// gazetteer is the embedded city table. Coordinates are city centroids,
// precise enough for 10 km clustering and RTT modelling. Aliases cover the
// identifier spellings the community-documentation miner encounters.
var gazetteer = []City{
	// ---- Europe ----
	{Name: "Amsterdam", Country: "NL", Continent: Europe, Coord: Coord{52.3676, 4.9041}, IATA: "AMS", Aliases: []string{"adam", "amst"}},
	{Name: "London", Country: "GB", Continent: Europe, Coord: Coord{51.5074, -0.1278}, IATA: "LHR", Aliases: []string{"LON", "LDN"}},
	{Name: "Frankfurt", Country: "DE", Continent: Europe, Coord: Coord{50.1109, 8.6821}, IATA: "FRA", Aliases: []string{"FFM", "Frankfurt am Main"}},
	{Name: "Paris", Country: "FR", Continent: Europe, Coord: Coord{48.8566, 2.3522}, IATA: "CDG", Aliases: []string{"PAR"}},
	{Name: "Berlin", Country: "DE", Continent: Europe, Coord: Coord{52.52, 13.405}, IATA: "TXL", Aliases: []string{"BER"}},
	{Name: "Madrid", Country: "ES", Continent: Europe, Coord: Coord{40.4168, -3.7038}, IATA: "MAD"},
	{Name: "Barcelona", Country: "ES", Continent: Europe, Coord: Coord{41.3874, 2.1686}, IATA: "BCN"},
	{Name: "Milan", Country: "IT", Continent: Europe, Coord: Coord{45.4642, 9.19}, IATA: "MXP", Aliases: []string{"Milano", "MIL"}},
	{Name: "Rome", Country: "IT", Continent: Europe, Coord: Coord{41.9028, 12.4964}, IATA: "FCO", Aliases: []string{"Roma"}},
	{Name: "Vienna", Country: "AT", Continent: Europe, Coord: Coord{48.2082, 16.3738}, IATA: "VIE", Aliases: []string{"Wien"}},
	{Name: "Zurich", Country: "CH", Continent: Europe, Coord: Coord{47.3769, 8.5417}, IATA: "ZRH", Aliases: []string{"Zuerich"}},
	{Name: "Geneva", Country: "CH", Continent: Europe, Coord: Coord{46.2044, 6.1432}, IATA: "GVA"},
	{Name: "Brussels", Country: "BE", Continent: Europe, Coord: Coord{50.8503, 4.3517}, IATA: "BRU", Aliases: []string{"Bruxelles"}},
	{Name: "Luxembourg", Country: "LU", Continent: Europe, Coord: Coord{49.6116, 6.1319}, IATA: "LUX"},
	{Name: "Dublin", Country: "IE", Continent: Europe, Coord: Coord{53.3498, -6.2603}, IATA: "DUB"},
	{Name: "Manchester", Country: "GB", Continent: Europe, Coord: Coord{53.4808, -2.2426}, IATA: "MAN"},
	{Name: "Edinburgh", Country: "GB", Continent: Europe, Coord: Coord{55.9533, -3.1883}, IATA: "EDI"},
	{Name: "Stockholm", Country: "SE", Continent: Europe, Coord: Coord{59.3293, 18.0686}, IATA: "ARN", Aliases: []string{"STO"}},
	{Name: "Copenhagen", Country: "DK", Continent: Europe, Coord: Coord{55.6761, 12.5683}, IATA: "CPH", Aliases: []string{"Kobenhavn"}},
	{Name: "Oslo", Country: "NO", Continent: Europe, Coord: Coord{59.9139, 10.7522}, IATA: "OSL"},
	{Name: "Helsinki", Country: "FI", Continent: Europe, Coord: Coord{60.1699, 24.9384}, IATA: "HEL"},
	{Name: "Warsaw", Country: "PL", Continent: Europe, Coord: Coord{52.2297, 21.0122}, IATA: "WAW", Aliases: []string{"Warszawa"}},
	{Name: "Prague", Country: "CZ", Continent: Europe, Coord: Coord{50.0755, 14.4378}, IATA: "PRG", Aliases: []string{"Praha"}},
	{Name: "Budapest", Country: "HU", Continent: Europe, Coord: Coord{47.4979, 19.0402}, IATA: "BUD"},
	{Name: "Bucharest", Country: "RO", Continent: Europe, Coord: Coord{44.4268, 26.1025}, IATA: "OTP", Aliases: []string{"Bucuresti"}},
	{Name: "Sofia", Country: "BG", Continent: Europe, Coord: Coord{42.6977, 23.3219}, IATA: "SOF"},
	{Name: "Athens", Country: "GR", Continent: Europe, Coord: Coord{37.9838, 23.7275}, IATA: "ATH"},
	{Name: "Lisbon", Country: "PT", Continent: Europe, Coord: Coord{38.7223, -9.1393}, IATA: "LIS", Aliases: []string{"Lisboa"}},
	{Name: "Marseille", Country: "FR", Continent: Europe, Coord: Coord{43.2965, 5.3698}, IATA: "MRS"},
	{Name: "Lyon", Country: "FR", Continent: Europe, Coord: Coord{45.764, 4.8357}, IATA: "LYS"},
	{Name: "Munich", Country: "DE", Continent: Europe, Coord: Coord{48.1351, 11.582}, IATA: "MUC", Aliases: []string{"Muenchen"}},
	{Name: "Hamburg", Country: "DE", Continent: Europe, Coord: Coord{53.5511, 9.9937}, IATA: "HAM"},
	{Name: "Dusseldorf", Country: "DE", Continent: Europe, Coord: Coord{51.2277, 6.7735}, IATA: "DUS", Aliases: []string{"Duesseldorf"}},
	{Name: "Rotterdam", Country: "NL", Continent: Europe, Coord: Coord{51.9244, 4.4777}, IATA: "RTM"},
	{Name: "Kyiv", Country: "UA", Continent: Europe, Coord: Coord{50.4501, 30.5234}, IATA: "KBP", Aliases: []string{"Kiev"}},
	{Name: "Moscow", Country: "RU", Continent: Europe, Coord: Coord{55.7558, 37.6173}, IATA: "SVO", Aliases: []string{"MOW"}},
	{Name: "Saint Petersburg", Country: "RU", Continent: Europe, Coord: Coord{59.9311, 30.3609}, IATA: "LED"},
	{Name: "Istanbul", Country: "TR", Continent: Europe, Coord: Coord{41.0082, 28.9784}, IATA: "IST"},
	{Name: "Zagreb", Country: "HR", Continent: Europe, Coord: Coord{45.815, 15.9819}, IATA: "ZAG"},
	{Name: "Belgrade", Country: "RS", Continent: Europe, Coord: Coord{44.7866, 20.4489}, IATA: "BEG", Aliases: []string{"Beograd"}},
	{Name: "Bratislava", Country: "SK", Continent: Europe, Coord: Coord{48.1486, 17.1077}, IATA: "BTS"},
	{Name: "Tallinn", Country: "EE", Continent: Europe, Coord: Coord{59.437, 24.7536}, IATA: "TLL"},
	{Name: "Riga", Country: "LV", Continent: Europe, Coord: Coord{56.9496, 24.1052}, IATA: "RIX"},
	{Name: "Vilnius", Country: "LT", Continent: Europe, Coord: Coord{54.6872, 25.2797}, IATA: "VNO"},

	// ---- North America ----
	{Name: "New York City", Country: "US", Continent: NorthAmerica, Coord: Coord{40.7128, -74.006}, IATA: "JFK", Aliases: []string{"New York", "NY"}},
	{Name: "Ashburn", Country: "US", Continent: NorthAmerica, Coord: Coord{39.0438, -77.4874}, IATA: "IAD", Aliases: []string{"Washington DC metro"}},
	{Name: "Washington", Country: "US", Continent: NorthAmerica, Coord: Coord{38.9072, -77.0369}, IATA: "DCA", Aliases: []string{"Washington DC"}},
	{Name: "Los Angeles", Country: "US", Continent: NorthAmerica, Coord: Coord{34.0522, -118.2437}, IATA: "LAX", Aliases: []string{"LA"}},
	{Name: "San Jose", Country: "US", Continent: NorthAmerica, Coord: Coord{37.3382, -121.8863}, IATA: "SJC", Aliases: []string{"Silicon Valley"}},
	{Name: "Palo Alto", Country: "US", Continent: NorthAmerica, Coord: Coord{37.4419, -122.143}, IATA: "PAO"},
	{Name: "San Francisco", Country: "US", Continent: NorthAmerica, Coord: Coord{37.7749, -122.4194}, IATA: "SFO"},
	{Name: "Seattle", Country: "US", Continent: NorthAmerica, Coord: Coord{47.6062, -122.3321}, IATA: "SEA"},
	{Name: "Chicago", Country: "US", Continent: NorthAmerica, Coord: Coord{41.8781, -87.6298}, IATA: "ORD", Aliases: []string{"CHI"}},
	{Name: "Dallas", Country: "US", Continent: NorthAmerica, Coord: Coord{32.7767, -96.797}, IATA: "DFW"},
	{Name: "Houston", Country: "US", Continent: NorthAmerica, Coord: Coord{29.7604, -95.3698}, IATA: "IAH"},
	{Name: "Atlanta", Country: "US", Continent: NorthAmerica, Coord: Coord{33.749, -84.388}, IATA: "ATL"},
	{Name: "Miami", Country: "US", Continent: NorthAmerica, Coord: Coord{25.7617, -80.1918}, IATA: "MIA"},
	{Name: "Denver", Country: "US", Continent: NorthAmerica, Coord: Coord{39.7392, -104.9903}, IATA: "DEN"},
	{Name: "Phoenix", Country: "US", Continent: NorthAmerica, Coord: Coord{33.4484, -112.074}, IATA: "PHX"},
	{Name: "Boston", Country: "US", Continent: NorthAmerica, Coord: Coord{42.3601, -71.0589}, IATA: "BOS"},
	{Name: "Philadelphia", Country: "US", Continent: NorthAmerica, Coord: Coord{39.9526, -75.1652}, IATA: "PHL"},
	{Name: "Newark", Country: "US", Continent: NorthAmerica, Coord: Coord{40.7357, -74.1724}, IATA: "EWR"},
	{Name: "Toronto", Country: "CA", Continent: NorthAmerica, Coord: Coord{43.6532, -79.3832}, IATA: "YYZ"},
	{Name: "Montreal", Country: "CA", Continent: NorthAmerica, Coord: Coord{45.5017, -73.5673}, IATA: "YUL"},
	{Name: "Vancouver", Country: "CA", Continent: NorthAmerica, Coord: Coord{49.2827, -123.1207}, IATA: "YVR"},
	{Name: "Mexico City", Country: "MX", Continent: NorthAmerica, Coord: Coord{19.4326, -99.1332}, IATA: "MEX"},
	{Name: "Kansas City", Country: "US", Continent: NorthAmerica, Coord: Coord{39.0997, -94.5786}, IATA: "MCI"},
	{Name: "Minneapolis", Country: "US", Continent: NorthAmerica, Coord: Coord{44.9778, -93.265}, IATA: "MSP"},
	{Name: "Salt Lake City", Country: "US", Continent: NorthAmerica, Coord: Coord{40.7608, -111.891}, IATA: "SLC"},
	{Name: "Las Vegas", Country: "US", Continent: NorthAmerica, Coord: Coord{36.1699, -115.1398}, IATA: "LAS"},
	{Name: "Portland", Country: "US", Continent: NorthAmerica, Coord: Coord{45.5152, -122.6784}, IATA: "PDX"},

	// ---- Asia/Pacific ----
	{Name: "Tokyo", Country: "JP", Continent: AsiaPacific, Coord: Coord{35.6762, 139.6503}, IATA: "NRT", Aliases: []string{"TYO"}},
	{Name: "Osaka", Country: "JP", Continent: AsiaPacific, Coord: Coord{34.6937, 135.5023}, IATA: "KIX"},
	{Name: "Singapore", Country: "SG", Continent: AsiaPacific, Coord: Coord{1.3521, 103.8198}, IATA: "SIN"},
	{Name: "Hong Kong", Country: "HK", Continent: AsiaPacific, Coord: Coord{22.3193, 114.1694}, IATA: "HKG"},
	{Name: "Seoul", Country: "KR", Continent: AsiaPacific, Coord: Coord{37.5665, 126.978}, IATA: "ICN"},
	{Name: "Taipei", Country: "TW", Continent: AsiaPacific, Coord: Coord{25.033, 121.5654}, IATA: "TPE"},
	{Name: "Sydney", Country: "AU", Continent: AsiaPacific, Coord: Coord{-33.8688, 151.2093}, IATA: "SYD"},
	{Name: "Melbourne", Country: "AU", Continent: AsiaPacific, Coord: Coord{-37.8136, 144.9631}, IATA: "MEL"},
	{Name: "Auckland", Country: "NZ", Continent: AsiaPacific, Coord: Coord{-36.8509, 174.7645}, IATA: "AKL"},
	{Name: "Mumbai", Country: "IN", Continent: AsiaPacific, Coord: Coord{19.076, 72.8777}, IATA: "BOM"},
	{Name: "Chennai", Country: "IN", Continent: AsiaPacific, Coord: Coord{13.0827, 80.2707}, IATA: "MAA"},
	{Name: "New Delhi", Country: "IN", Continent: AsiaPacific, Coord: Coord{28.6139, 77.209}, IATA: "DEL", Aliases: []string{"Delhi"}},
	{Name: "Jakarta", Country: "ID", Continent: AsiaPacific, Coord: Coord{-6.2088, 106.8456}, IATA: "CGK"},
	{Name: "Kuala Lumpur", Country: "MY", Continent: AsiaPacific, Coord: Coord{3.139, 101.6869}, IATA: "KUL"},
	{Name: "Bangkok", Country: "TH", Continent: AsiaPacific, Coord: Coord{13.7563, 100.5018}, IATA: "BKK"},
	{Name: "Manila", Country: "PH", Continent: AsiaPacific, Coord: Coord{14.5995, 120.9842}, IATA: "MNL"},
	{Name: "Shanghai", Country: "CN", Continent: AsiaPacific, Coord: Coord{31.2304, 121.4737}, IATA: "PVG"},
	{Name: "Beijing", Country: "CN", Continent: AsiaPacific, Coord: Coord{39.9042, 116.4074}, IATA: "PEK"},
	{Name: "Dubai", Country: "AE", Continent: AsiaPacific, Coord: Coord{25.2048, 55.2708}, IATA: "DXB"},
	{Name: "Tel Aviv", Country: "IL", Continent: AsiaPacific, Coord: Coord{32.0853, 34.7818}, IATA: "TLV"},

	// ---- South America ----
	{Name: "Sao Paulo", Country: "BR", Continent: SouthAmerica, Coord: Coord{-23.5505, -46.6333}, IATA: "GRU"},
	{Name: "Rio de Janeiro", Country: "BR", Continent: SouthAmerica, Coord: Coord{-22.9068, -43.1729}, IATA: "GIG"},
	{Name: "Buenos Aires", Country: "AR", Continent: SouthAmerica, Coord: Coord{-34.6037, -58.3816}, IATA: "EZE"},
	{Name: "Santiago", Country: "CL", Continent: SouthAmerica, Coord: Coord{-33.4489, -70.6693}, IATA: "SCL"},
	{Name: "Bogota", Country: "CO", Continent: SouthAmerica, Coord: Coord{4.711, -74.0721}, IATA: "BOG"},
	{Name: "Lima", Country: "PE", Continent: SouthAmerica, Coord: Coord{-12.0464, -77.0428}, IATA: "LIM"},
	{Name: "Fortaleza", Country: "BR", Continent: SouthAmerica, Coord: Coord{-3.7319, -38.5267}, IATA: "FOR"},
	{Name: "Porto Alegre", Country: "BR", Continent: SouthAmerica, Coord: Coord{-30.0346, -51.2177}, IATA: "POA"},

	// ---- Africa ----
	{Name: "Johannesburg", Country: "ZA", Continent: Africa, Coord: Coord{-26.2041, 28.0473}, IATA: "JNB", Aliases: []string{"Joburg"}},
	{Name: "Cape Town", Country: "ZA", Continent: Africa, Coord: Coord{-33.9249, 18.4241}, IATA: "CPT"},
	{Name: "Nairobi", Country: "KE", Continent: Africa, Coord: Coord{-1.2921, 36.8219}, IATA: "NBO"},
	{Name: "Lagos", Country: "NG", Continent: Africa, Coord: Coord{6.5244, 3.3792}, IATA: "LOS"},
	{Name: "Cairo", Country: "EG", Continent: Africa, Coord: Coord{30.0444, 31.2357}, IATA: "CAI"},
	{Name: "Accra", Country: "GH", Continent: Africa, Coord: Coord{5.6037, -0.187}, IATA: "ACC"},
	{Name: "Casablanca", Country: "MA", Continent: Africa, Coord: Coord{33.5731, -7.5898}, IATA: "CMN"},
	{Name: "Dar es Salaam", Country: "TZ", Continent: Africa, Coord: Coord{-6.7924, 39.2083}, IATA: "DAR"},
}
