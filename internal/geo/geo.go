// Package geo provides the geographic substrate for Kepler: a world-city
// gazetteer with coordinates, great-circle distance computation, a geocoder
// that resolves the location identifiers operators embed in BGP community
// documentation (full city names, city initials, IATA airport codes), and the
// 10 km identifier clustering described in Section 3.2 of the paper.
//
// The paper uses the Google Maps Geocoding API to turn free-form identifiers
// into coordinates and then groups identifiers within 10 km of each other.
// This package substitutes an embedded gazetteer for the remote API; the
// resolution and clustering logic is unchanged.
package geo

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Continent identifies one of the populated continents used for the
// regional breakdowns in Table 1 and Figure 5.
type Continent uint8

// Continents, ordered as the paper's Table 1 lists them.
const (
	ContinentUnknown Continent = iota
	Europe
	NorthAmerica
	AsiaPacific
	SouthAmerica
	Africa
)

// Continents lists all known continents in Table 1 order.
var Continents = []Continent{Europe, NorthAmerica, AsiaPacific, SouthAmerica, Africa}

// String returns the human-readable continent name.
func (c Continent) String() string {
	switch c {
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case AsiaPacific:
		return "Asia/Pacific"
	case SouthAmerica:
		return "South America"
	case Africa:
		return "Africa"
	default:
		return "Unknown"
	}
}

// Coord is a WGS84 coordinate pair in decimal degrees.
type Coord struct {
	Lat float64
	Lon float64
}

// Valid reports whether the coordinate lies in the legal lat/lon range and
// is not the zero "null island" placeholder.
func (c Coord) Valid() bool {
	if c.Lat == 0 && c.Lon == 0 {
		return false
	}
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180
}

// earthRadiusKm is the mean Earth radius used by the haversine formula.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between a and b in
// kilometres using the haversine formula.
func DistanceKm(a, b Coord) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// CityID identifies a city in the gazetteer. IDs are stable for the life of
// a process: they are assigned in gazetteer order starting at 1. The zero
// value means "no city".
type CityID uint32

// NoCity is the zero CityID, meaning an unresolvable location.
const NoCity CityID = 0

// City is one gazetteer entry.
type City struct {
	ID        CityID
	Name      string // canonical name, e.g. "Amsterdam"
	Country   string // ISO 3166-1 alpha-2 code, e.g. "NL"
	Continent Continent
	Coord     Coord
	IATA      string   // primary airport code, e.g. "AMS"
	Aliases   []string // additional identifiers seen in community docs
}

// World is an immutable city gazetteer plus the alias index used for
// geocoding. The zero value is unusable; construct with NewWorld or
// DefaultWorld.
type World struct {
	cities  []City            // indexed by CityID-1
	byAlias map[string]CityID // normalized alias -> city
}

// NewWorld builds a gazetteer from the given cities. IDs are assigned in
// slice order starting from 1, overriding any IDs already present. Aliases
// are indexed case-insensitively; later cities do not displace earlier
// alias claims (first registration wins, mirroring how geocoding APIs
// resolve ambiguous names to the most prominent city).
func NewWorld(cities []City) *World {
	w := &World{
		cities:  make([]City, len(cities)),
		byAlias: make(map[string]CityID, len(cities)*4),
	}
	copy(w.cities, cities)
	for i := range w.cities {
		c := &w.cities[i]
		c.ID = CityID(i + 1)
		w.addAlias(c.Name, c.ID)
		if c.IATA != "" {
			w.addAlias(c.IATA, c.ID)
		}
		w.addAlias(initials(c.Name), c.ID)
		for _, a := range c.Aliases {
			w.addAlias(a, c.ID)
		}
	}
	return w
}

func (w *World) addAlias(alias string, id CityID) {
	key := normalizeAlias(alias)
	if key == "" {
		return
	}
	if _, taken := w.byAlias[key]; !taken {
		w.byAlias[key] = id
	}
}

// normalizeAlias canonicalizes an identifier for alias lookup: lower-case,
// with punctuation and internal whitespace removed, so that "New York City",
// "new-york-city" and "NewYork City" all collide.
func normalizeAlias(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		}
	}
	return b.String()
}

// initials derives the capital-letter initialism of a multi-word name
// ("New York City" -> "NYC"). Single-word names yield "" since their
// initialism would be a single ambiguous letter.
func initials(name string) string {
	words := strings.Fields(name)
	if len(words) < 2 {
		return ""
	}
	var b strings.Builder
	for _, w := range words {
		b.WriteByte(w[0] &^ 0x20) // upper-case ASCII
	}
	return b.String()
}

// NumCities returns the number of cities in the gazetteer.
func (w *World) NumCities() int { return len(w.cities) }

// City returns the city with the given ID, or false if the ID is out of
// range.
func (w *World) City(id CityID) (City, bool) {
	if id == NoCity || int(id) > len(w.cities) {
		return City{}, false
	}
	return w.cities[id-1], true
}

// Cities returns all cities in ID order. The returned slice is shared;
// callers must not modify it.
func (w *World) Cities() []City { return w.cities }

// Resolve geocodes a free-form location identifier to a city. It accepts
// canonical names ("Amsterdam"), initialisms ("NYC"), IATA codes ("JFK",
// "FRA") and registered aliases, all case-insensitively.
func (w *World) Resolve(identifier string) (City, bool) {
	id, ok := w.byAlias[normalizeAlias(identifier)]
	if !ok {
		return City{}, false
	}
	return w.cities[id-1], true
}

// Nearest returns the gazetteer city closest to the coordinate and its
// distance in km. ok is false for an empty gazetteer or invalid coordinate.
func (w *World) Nearest(c Coord) (City, float64, bool) {
	if len(w.cities) == 0 || !c.Valid() {
		return City{}, 0, false
	}
	best := 0
	bestD := math.Inf(1)
	for i := range w.cities {
		if d := DistanceKm(c, w.cities[i].Coord); d < bestD {
			best, bestD = i, d
		}
	}
	return w.cities[best], bestD, true
}

// ClusterRadiusKm is the identifier-grouping radius from Section 3.2: two
// location identifiers whose geocoded coordinates are within this distance
// are treated as the same location.
const ClusterRadiusKm = 10.0

// Cluster groups identifiers into locations. Each input identifier is
// geocoded via Resolve; identifiers within ClusterRadiusKm of an existing
// cluster join it (single-linkage, in deterministic input order). The result
// maps every resolvable identifier to a cluster label, which is the
// normalized form of the first identifier that founded the cluster.
// Unresolvable identifiers are reported in the second return value.
func (w *World) Cluster(identifiers []string) (map[string]string, []string) {
	type cluster struct {
		label string
		coord Coord
	}
	var clusters []cluster
	out := make(map[string]string, len(identifiers))
	var unresolved []string

	// Deterministic order regardless of caller.
	sorted := make([]string, len(identifiers))
	copy(sorted, identifiers)
	sort.Strings(sorted)

	for _, ident := range sorted {
		city, ok := w.Resolve(ident)
		if !ok {
			unresolved = append(unresolved, ident)
			continue
		}
		assigned := false
		for i := range clusters {
			if DistanceKm(city.Coord, clusters[i].coord) <= ClusterRadiusKm {
				out[ident] = clusters[i].label
				assigned = true
				break
			}
		}
		if !assigned {
			label := normalizeAlias(city.Name)
			clusters = append(clusters, cluster{label: label, coord: city.Coord})
			out[ident] = label
		}
	}
	return out, unresolved
}

// PropagationDelay returns a one-way speed-of-light-in-fibre propagation
// delay estimate in milliseconds for the great-circle distance between a
// and b. Light in fibre travels at roughly 2/3 c ≈ 200 km/ms; real paths
// detour, so a conventional 1.5x path-stretch factor is applied. This is
// the RTT model used by the traceroute substrate (Section 6.3).
func PropagationDelay(a, b Coord) float64 {
	const kmPerMs = 200.0
	const stretch = 1.5
	return DistanceKm(a, b) * stretch / kmPerMs
}

// FormatCity renders "Name, CC" for logs and reports.
func FormatCity(c City) string {
	return fmt.Sprintf("%s, %s", c.Name, c.Country)
}
