package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKmKnownPairs(t *testing.T) {
	w := DefaultWorld()
	ams, _ := w.Resolve("Amsterdam")
	lon, _ := w.Resolve("London")
	fra, _ := w.Resolve("Frankfurt")

	// Amsterdam–London is roughly 358 km, Amsterdam–Frankfurt roughly 360 km.
	cases := []struct {
		a, b    Coord
		wantKm  float64
		within  float64
		comment string
	}{
		{ams.Coord, lon.Coord, 358, 25, "AMS-LON"},
		{ams.Coord, fra.Coord, 365, 25, "AMS-FRA"},
		{ams.Coord, ams.Coord, 0, 0.001, "identity"},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.within {
			t.Errorf("%s: DistanceKm = %.1f, want %.1f ± %.1f", c.comment, got, c.wantKm, c.within)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := Coord{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	w := DefaultWorld()
	cities := w.Cities()
	// Spot-check the triangle inequality over gazetteer triples.
	for i := 0; i < len(cities); i += 7 {
		for j := 1; j < len(cities); j += 13 {
			k := (i + j) % len(cities)
			ab := DistanceKm(cities[i].Coord, cities[j].Coord)
			bc := DistanceKm(cities[j].Coord, cities[k].Coord)
			ac := DistanceKm(cities[i].Coord, cities[k].Coord)
			if ac > ab+bc+1e-6 {
				t.Fatalf("triangle inequality violated: %s %s %s", cities[i].Name, cities[j].Name, cities[k].Name)
			}
		}
	}
}

func TestResolveAliases(t *testing.T) {
	w := DefaultWorld()
	cases := []struct {
		ident string
		want  string
	}{
		{"Amsterdam", "Amsterdam"},
		{"AMS", "Amsterdam"},
		{"amsterdam", "Amsterdam"},
		{"New York City", "New York City"},
		{"NYC", "New York City"},
		{"JFK", "New York City"},
		{"FRA", "Frankfurt"},
		{"FFM", "Frankfurt"},
		{"frankfurt am main", "Frankfurt"},
		{"LHR", "London"},
		{"LON", "London"},
		{"sao-paulo", "Sao Paulo"},
	}
	for _, c := range cases {
		got, ok := w.Resolve(c.ident)
		if !ok {
			t.Errorf("Resolve(%q): not found", c.ident)
			continue
		}
		if got.Name != c.want {
			t.Errorf("Resolve(%q) = %s, want %s", c.ident, got.Name, c.want)
		}
	}
	if _, ok := w.Resolve("Atlantis"); ok {
		t.Error("Resolve(Atlantis) unexpectedly succeeded")
	}
	if _, ok := w.Resolve(""); ok {
		t.Error("Resolve(\"\") unexpectedly succeeded")
	}
}

func TestCityLookupByID(t *testing.T) {
	w := DefaultWorld()
	if _, ok := w.City(NoCity); ok {
		t.Error("City(NoCity) should fail")
	}
	if _, ok := w.City(CityID(w.NumCities() + 1)); ok {
		t.Error("City(out of range) should fail")
	}
	first, ok := w.City(1)
	if !ok || first.ID != 1 {
		t.Fatalf("City(1) = %+v ok=%v", first, ok)
	}
	// Every city must resolve to itself via its canonical name.
	for _, c := range w.Cities() {
		got, ok := w.Resolve(c.Name)
		if !ok {
			t.Errorf("city %q does not resolve", c.Name)
			continue
		}
		if DistanceKm(got.Coord, c.Coord) > ClusterRadiusKm {
			t.Errorf("city %q resolves to %q more than %v km away", c.Name, got.Name, ClusterRadiusKm)
		}
	}
}

func TestGazetteerIntegrity(t *testing.T) {
	w := DefaultWorld()
	seen := make(map[string]bool)
	for _, c := range w.Cities() {
		if c.Name == "" || c.Country == "" {
			t.Errorf("city %d has empty name or country", c.ID)
		}
		if !c.Coord.Valid() {
			t.Errorf("city %q has invalid coordinates %+v", c.Name, c.Coord)
		}
		if c.Continent == ContinentUnknown {
			t.Errorf("city %q has unknown continent", c.Name)
		}
		key := c.Name + "/" + c.Country
		if seen[key] {
			t.Errorf("duplicate city %q", key)
		}
		seen[key] = true
	}
	// The gazetteer must cover all five continents for Table 1.
	counts := make(map[Continent]int)
	for _, c := range w.Cities() {
		counts[c.Continent]++
	}
	for _, cont := range Continents {
		if counts[cont] == 0 {
			t.Errorf("no cities on continent %s", cont)
		}
	}
	if counts[Europe] <= counts[NorthAmerica] {
		t.Error("gazetteer should be Europe-heavy to match the paper's skew")
	}
}

func TestNearest(t *testing.T) {
	w := DefaultWorld()
	ams, _ := w.Resolve("AMS")
	got, d, ok := w.Nearest(Coord{52.3, 4.8}) // just outside Amsterdam
	if !ok {
		t.Fatal("Nearest failed")
	}
	if got.Name != ams.Name {
		t.Errorf("Nearest = %s, want Amsterdam", got.Name)
	}
	if d > 20 {
		t.Errorf("Nearest distance %.1f km, want < 20", d)
	}
	if _, _, ok := w.Nearest(Coord{}); ok {
		t.Error("Nearest should reject the zero coordinate")
	}
}

func TestClusterGroupsNearbyIdentifiers(t *testing.T) {
	w := DefaultWorld()
	labels, unresolved := w.Cluster([]string{"New York City", "NYC", "JFK", "Newark", "Amsterdam", "AMS", "Gotham"})
	if len(unresolved) != 1 || unresolved[0] != "Gotham" {
		t.Fatalf("unresolved = %v, want [Gotham]", unresolved)
	}
	// All three NYC identifiers must share one label.
	if labels["New York City"] != labels["NYC"] || labels["NYC"] != labels["JFK"] {
		t.Errorf("NYC identifiers split: %v", labels)
	}
	// Newark is ~14 km from Manhattan: beyond the 10 km radius, so its own cluster.
	if labels["Newark"] == labels["NYC"] {
		t.Errorf("Newark should not cluster with NYC: %v", labels)
	}
	if labels["Amsterdam"] != labels["AMS"] {
		t.Errorf("Amsterdam identifiers split: %v", labels)
	}
	if labels["Amsterdam"] == labels["NYC"] {
		t.Errorf("Amsterdam must not cluster with NYC")
	}
}

func TestClusterDeterminism(t *testing.T) {
	w := DefaultWorld()
	in1 := []string{"AMS", "Amsterdam", "Rotterdam", "LON", "London"}
	in2 := []string{"London", "Rotterdam", "AMS", "LON", "Amsterdam"}
	l1, _ := w.Cluster(in1)
	l2, _ := w.Cluster(in2)
	for k, v := range l1 {
		if l2[k] != v {
			t.Errorf("cluster label for %q differs across input orders: %q vs %q", k, v, l2[k])
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	w := DefaultWorld()
	ams, _ := w.Resolve("AMS")
	lon, _ := w.Resolve("LON")
	nyc, _ := w.Resolve("NYC")

	local := PropagationDelay(ams.Coord, ams.Coord)
	if local != 0 {
		t.Errorf("zero-distance delay = %f", local)
	}
	short := PropagationDelay(ams.Coord, lon.Coord)
	long := PropagationDelay(ams.Coord, nyc.Coord)
	if short <= 0 || long <= short {
		t.Errorf("delay ordering wrong: short=%.2f long=%.2f", short, long)
	}
	// Transatlantic one-way should be tens of ms, not hundreds.
	if long < 20 || long > 80 {
		t.Errorf("AMS-NYC one-way delay %.1f ms outside plausible [20,80]", long)
	}
}

func TestInitials(t *testing.T) {
	cases := map[string]string{
		"New York City": "NYC",
		"Amsterdam":     "",
		"Sao Paulo":     "SP",
		"":              "",
	}
	for in, want := range cases {
		if got := initials(in); got != want {
			t.Errorf("initials(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeAlias(t *testing.T) {
	cases := map[string]string{
		"New York City": "newyorkcity",
		"new-york-city": "newyorkcity",
		"AMS":           "ams",
		"  ":            "",
		"FR5/Kleyer":    "fr5kleyer",
	}
	for in, want := range cases {
		if got := normalizeAlias(in); got != want {
			t.Errorf("normalizeAlias(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestContinentString(t *testing.T) {
	for _, c := range Continents {
		if c.String() == "Unknown" {
			t.Errorf("continent %d stringifies to Unknown", c)
		}
	}
	if ContinentUnknown.String() != "Unknown" {
		t.Error("ContinentUnknown should stringify to Unknown")
	}
}
