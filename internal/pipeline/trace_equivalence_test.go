package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/core"
	"kepler/internal/live"
	"kepler/internal/mrt"
	"kepler/internal/simulate"
)

// runTraced replays a record stream with Config.Tracing enabled and a
// TraceRecorded hook installed, through either the sequential detector
// (shards == 1) or the sharded engine, returning the detection output plus
// the recorded evidence chains. It mirrors Run/RunEngine exactly so the
// results are comparable to an untraced reference run.
func runTraced(s *Stack, records []*mrt.Record, cfg core.Config, shards int) ([]core.Outage, []core.Incident, []core.OutageTrace) {
	cfg.Tracing = true
	var traces []core.OutageTrace
	hooks := core.Hooks{TraceRecorded: func(tr core.OutageTrace) { traces = append(traces, tr) }}

	if shards == 1 {
		det := s.NewDetector(cfg)
		det.SetHooks(hooks)
		var outages []core.Outage
		for _, rec := range records {
			outages = append(outages, det.Process(rec)...)
		}
		if len(records) > 0 {
			outages = append(outages, det.Flush(records[len(records)-1].Time)...)
		}
		return outages, det.Incidents(), traces
	}

	eng := s.NewEngine(cfg, shards)
	defer eng.Close()
	eng.SetHooks(hooks)
	n := 0
	for n < len(records) && records[n].Kind == mrt.KindRIB {
		n++
	}
	outages, _ := eng.BootstrapRIB(records[:n])
	res, _ := live.Pump(context.Background(), live.Adapt(bgpstream.NewSliceSource(records[n:])), eng)
	outages = append(outages, res.Outages...)
	if res.Last.IsZero() && n > 0 {
		outages = append(outages, eng.Flush(records[n-1].Time)...)
	}
	return outages, eng.Incidents(), traces
}

// TestTracingEquivalence asserts the tentpole observability invariant:
// provenance tracing must be a pure observer. The same seeded scenario is
// replayed with tracing off (the reference) and with tracing on, through
// the sequential detector and the 4-shard engine, and the Outage and
// Incident output must be byte-for-byte identical in every run. It also
// pins the trace contract itself — one trace per resolved outage, index-
// aligned, carrying a non-empty evidence chain.
func TestTracingEquivalence(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	if target == 0 {
		t.Fatal("no trackable facility")
	}
	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: 45 * time.Minute,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: tracing off (DefaultConfig leaves Tracing false).
	wantOuts, wantIncs := s.Run(res.Records, core.DefaultConfig(), nil)
	if len(wantOuts) == 0 {
		t.Fatal("reference detector found nothing; equivalence would be vacuous")
	}

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			gotOuts, gotIncs, traces := runTraced(s, res.Records, core.DefaultConfig(), shards)
			if !reflect.DeepEqual(gotOuts, wantOuts) {
				t.Errorf("tracing perturbed outages:\n traced:   %+v\n reference: %+v", gotOuts, wantOuts)
			}
			if !reflect.DeepEqual(gotIncs, wantIncs) {
				t.Errorf("tracing perturbed incidents (%d vs %d)", len(gotIncs), len(wantIncs))
			}
			if len(traces) != len(gotOuts) {
				t.Fatalf("got %d traces for %d resolved outages; want 1:1", len(traces), len(gotOuts))
			}
			for i, tr := range traces {
				o := gotOuts[i]
				if tr.PoP != o.PoP || !tr.Start.Equal(o.Start) || !tr.End.Equal(o.End) {
					t.Errorf("trace %d misaligned: trace (%v %v..%v) vs outage (%v %v..%v)",
						i, tr.PoP, tr.Start, tr.End, o.PoP, o.Start, o.End)
				}
				if tr.Version != core.TraceVersion {
					t.Errorf("trace %d version = %d, want %d", i, tr.Version, core.TraceVersion)
				}
				if len(tr.Chapters) == 0 {
					t.Errorf("trace %d has no chapters; evidence chain missing", i)
				}
			}
		})
	}
}

// TestTracingOffRecordsNothing pins the zero-cost-when-disabled contract:
// with Config.Tracing false, an installed TraceRecorded hook never fires.
func TestTracingOffRecordsNothing(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	if target == 0 {
		t.Fatal("no trackable facility")
	}
	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: 45 * time.Minute,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	fired := 0
	det := s.NewDetector(core.DefaultConfig())
	det.SetHooks(core.Hooks{TraceRecorded: func(core.OutageTrace) { fired++ }})
	var outs []core.Outage
	for _, rec := range res.Records {
		outs = append(outs, det.Process(rec)...)
	}
	outs = append(outs, det.Flush(res.Records[len(res.Records)-1].Time)...)
	if len(outs) == 0 {
		t.Fatal("detector found nothing; suppression check would be vacuous")
	}
	if fired != 0 {
		t.Errorf("TraceRecorded fired %d times with tracing disabled; want 0", fired)
	}
}
