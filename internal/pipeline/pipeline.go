// Package pipeline wires Kepler end to end: from a generated world it
// derives the noisy public data sources, merges the colocation map, mines
// the community dictionary, builds the AS-to-organization table, and
// produces ready-to-run detectors plus a simulation-backed data plane.
// Experiments, commands and examples all assemble the system through this
// package so they exercise the identical code path the paper describes:
// Kepler never sees ground truth, only the reconstructed sources.
package pipeline

import (
	"context"
	"time"

	"kepler/internal/as2org"
	"kepler/internal/bgp"
	"kepler/internal/bgpstream"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/core"
	"kepler/internal/geo"
	"kepler/internal/live"
	"kepler/internal/mrt"
	"kepler/internal/registry"
	"kepler/internal/routing"
	"kepler/internal/simulate"
	"kepler/internal/topology"
	"kepler/internal/traceroute"
)

// Stack is an assembled Kepler deployment over one world.
type Stack struct {
	World *topology.World
	Geo   *geo.World
	// Map is Kepler's colocation map, rebuilt from noisy sources (not the
	// ground-truth map).
	Map  *colo.Map
	Dict *communities.Dictionary
	Orgs *as2org.Table
}

// snapshotOptions returns the source-noise profile used for Kepler's map.
// Member lists carry realistic gaps; facility/IXP *existence* coverage is
// complete so that identifiers remain stable between the ground-truth and
// reconstructed maps (PeeringDB's real weakness is stale member lists, not
// missing buildings).
func snapshotOptions() registry.SnapshotOptions {
	o := registry.DefaultSnapshotOptions()
	o.PeeringDBFacilityCoverage = 1.0
	return o
}

// Build assembles the stack for a world. The seed drives source noise and
// documentation rendering.
func Build(w *topology.World, seed int64) *Stack {
	facRecs, ixpRecs := registry.Snapshot(w.Truth, snapshotOptions(), seed)
	b := colo.NewBuilder(w.Geo)
	for _, r := range facRecs {
		b.AddFacility(r)
	}
	for _, r := range ixpRecs {
		b.AddIXP(r)
	}
	cmap := b.Build()

	docs := registry.RenderDocs(w.Truth, registry.DocOptions{DistractorsPerDoc: 3}, seed+1)
	dict := communities.NewMiner(w.Geo, cmap).Mine(docs)
	orgs := as2org.Build(w.Registrations())

	return &Stack{World: w, Geo: w.Geo, Map: cmap, Dict: dict, Orgs: orgs}
}

// NewDetector builds a sequential detector over the stack.
func (s *Stack) NewDetector(cfg core.Config) *core.Detector {
	return core.New(cfg, s.Dict, s.Map, s.Orgs)
}

// NewEngine builds a sharded concurrent engine over the stack; shards <= 0
// selects GOMAXPROCS. The engine emits exactly the same outages and
// incidents as the sequential detector. Callers own Close.
func (s *Stack) NewEngine(cfg core.Config, shards int) *core.Engine {
	return core.NewEngine(cfg, s.Dict, s.Map, s.Orgs, shards)
}

// Run feeds a time-sorted record stream through a fresh detector and
// returns all completed outages and classified incidents. A non-nil dp
// enables data-plane validation.
func (s *Stack) Run(records []*mrt.Record, cfg core.Config, dp core.DataPlane) ([]core.Outage, []core.Incident) {
	det := s.NewDetector(cfg)
	if dp != nil {
		det.SetDataPlane(dp)
	}
	var outages []core.Outage
	src := bgpstream.NewSliceSource(records)
	for {
		rec, err := src.Next()
		if err != nil {
			break
		}
		outages = append(outages, det.Process(rec)...)
	}
	if len(records) > 0 {
		outages = append(outages, det.Flush(records[len(records)-1].Time)...)
	}
	return outages, det.Incidents()
}

// RunEngine feeds a time-sorted record stream through a fresh sharded
// engine and returns all completed outages and classified incidents — the
// concurrent counterpart of Run, with identical output for any stream. A
// leading table dump bulk-loads across the shards via Engine.BootstrapRIB;
// the remaining stream drives the engine through the same live.Pump loop
// the keplerd daemon uses, so the batch and serving paths cannot drift.
func (s *Stack) RunEngine(records []*mrt.Record, cfg core.Config, dp core.DataPlane, shards int) ([]core.Outage, []core.Incident) {
	eng := s.NewEngine(cfg, shards)
	defer eng.Close()
	if dp != nil {
		eng.SetDataPlane(dp)
	}
	n := 0
	for n < len(records) && records[n].Kind == mrt.KindRIB {
		n++
	}
	outages, _ := eng.BootstrapRIB(records[:n]) // all KindRIB by construction
	res, _ := live.Pump(context.Background(), live.Adapt(bgpstream.NewSliceSource(records[n:])), eng)
	outages = append(outages, res.Outages...)
	if res.Last.IsZero() && n > 0 {
		// The stream was all table dump: Pump saw nothing, so flush here.
		outages = append(outages, eng.Flush(records[n-1].Time)...)
	}
	return outages, eng.Incidents()
}

// SimDataPlane validates suspected outages with targeted synthetic
// traceroutes, mirroring Section 4.4: it selects member pairs whose healthy
// baseline paths cross the suspected PoP, re-traces them under the failure
// state at the queried instant, and confirms when most baseline paths no
// longer cross the PoP.
type SimDataPlane struct {
	res      *simulate.Result
	tracer   *traceroute.Tracer
	cmap     *colo.Map
	platform *traceroute.Platform
	// maxPairs bounds targeted measurements per query (platform etiquette).
	maxPairs int
}

// NewSimDataPlane builds the data plane over a rendered scenario. budget
// caps the total number of targeted traceroutes.
func (s *Stack) NewSimDataPlane(res *simulate.Result, budget int) *SimDataPlane {
	return &SimDataPlane{
		res:      res,
		tracer:   traceroute.NewTracer(res.Engine),
		cmap:     s.Map,
		platform: &traceroute.Platform{Budget: budget},
		maxPairs: 8,
	}
}

// Used returns the number of traceroutes spent.
func (dp *SimDataPlane) Used() int { return dp.platform.Used }

// crossesPoP reports whether a trace crosses the PoP at the right
// granularity.
func (dp *SimDataPlane) crossesPoP(t *traceroute.Trace, pop colo.PoP) bool {
	switch pop.Kind {
	case colo.PoPFacility:
		return t.CrossesFacility(colo.FacilityID(pop.ID))
	case colo.PoPIXP:
		return t.CrossesIXP(colo.IXPID(pop.ID))
	case colo.PoPCity:
		for _, f := range dp.cmap.FacilitiesInCity(geo.CityID(pop.ID)) {
			if t.CrossesFacility(f) {
				return true
			}
		}
		for _, ix := range dp.cmap.IXPsInCity(geo.CityID(pop.ID)) {
			if t.CrossesIXP(ix) {
				return true
			}
		}
	}
	return false
}

// pairsAt selects AS pairs that interconnect over the PoP — the pair
// selection of Section 4.4 ("it identifies the baseline paths of AS pairs
// that interconnect over the PoP"), which in the real system comes from the
// traceroute archive's stable subpaths.
func (dp *SimDataPlane) pairsAt(pop colo.PoP) [][2]bgp.ASN {
	var out [][2]bgp.ASN
	add := func(a, b bgp.ASN) {
		if len(out) < dp.maxPairs*4 {
			out = append(out, [2]bgp.ASN{a, b})
		}
	}
	world := dp.res.Engine.World()
	match := func(l *topology.Interconnect) bool {
		switch pop.Kind {
		case colo.PoPFacility:
			f := colo.FacilityID(pop.ID)
			return l.Facility == f || l.AFac == f || l.BFac == f
		case colo.PoPIXP:
			return l.IXP == colo.IXPID(pop.ID)
		case colo.PoPCity:
			city := geo.CityID(pop.ID)
			if l.Facility != 0 && dp.cmap.CityOf(colo.FacilityPoP(l.Facility)) == city {
				return true
			}
			return l.IXP != 0 && dp.cmap.CityOf(colo.IXPPoP(l.IXP)) == city
		}
		return false
	}
	for _, l := range world.Links {
		if match(l) {
			add(l.A, l.B)
		}
	}
	return out
}

// Confirm implements core.DataPlane.
func (dp *SimDataPlane) Confirm(pop colo.PoP, at time.Time) (bool, bool) {
	pairs := dp.pairsAt(pop)
	if len(pairs) == 0 {
		return false, false
	}
	eng := dp.res.Engine
	healthyMask := routing.NewMask()
	nowMask := dp.res.MaskAt(at)

	healthyTables := map[bgp.ASN]*routing.Table{}
	nowTables := map[bgp.ASN]*routing.Table{}
	tbl := func(cache map[bgp.ASN]*routing.Table, mask *routing.Mask, origin bgp.ASN) *routing.Table {
		t, ok := cache[origin]
		if !ok {
			t = eng.ComputeOrigin(origin, mask)
			cache[origin] = t
		}
		return t
	}

	baseline, affected := 0, 0
	for _, pr := range pairs {
		if baseline >= dp.maxPairs {
			break
		}
		src, dst := pr[0], pr[1]
		ht, ok := dp.tracer.Trace(tbl(healthyTables, healthyMask, dst), src)
		if !ok || !dp.crossesPoP(ht, pop) {
			continue
		}
		baseline++
		nt, err := dp.platform.Trace(dp.tracer, tbl(nowTables, nowMask, dst), src)
		if err == traceroute.ErrBudget {
			return false, false
		}
		if err != nil || !dp.crossesPoP(nt, pop) {
			affected++
		}
	}
	if baseline == 0 {
		return false, false
	}
	return float64(affected)/float64(baseline) >= 0.5, true
}
