package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"kepler/internal/bgpstream"
	"kepler/internal/core"
	"kepler/internal/live"
	"kepler/internal/metrics"
	"kepler/internal/mrt"
	"kepler/internal/probe"
	"kepler/internal/simulate"
)

// runProbed drives a record stream through an engine wired to the async
// probe scheduler and returns the completed outages.
func runProbed(t *testing.T, s *Stack, records []*mrt.Record, cfg core.Config, sched *probe.Scheduler, shards int) []core.Outage {
	t.Helper()
	eng := s.NewEngine(cfg, shards)
	defer eng.Close()
	eng.SetProber(sched)
	res, err := live.Pump(context.Background(), live.Adapt(bgpstream.NewSliceSource(records)), eng)
	if err != nil {
		t.Fatal(err)
	}
	return res.Outages
}

// locatedKey reduces an outage to its located identity — epicenter, start
// and data-plane verdict — for readable set diffs when the byte-for-byte
// comparison below fails.
func locatedKey(o core.Outage) string {
	return fmt.Sprintf("%s|%d|%v|%v", o.PoP, o.Start.Unix(), o.Confirmed, o.DataPlaneChecked)
}

// TestProbeSchedulerEquivalence is the async-vs-sync pin: with an
// unbounded budget and an instant backend, the scheduler-driven engine
// must emit byte-for-byte the outages of the synchronous batch DataPlane
// path over a full simulated scenario — promotion re-observes at the
// original signal time, and park-time provisional watches capture the
// returns of the deferred bin, so even restoration instants line up. Run
// under -race this also exercises the worker/barrier synchronization.
func TestProbeSchedulerEquivalence(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	if target == 0 {
		t.Fatal("no trackable facility")
	}
	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: time.Hour,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}

	seqDP := s.NewSimDataPlane(res, 1<<30)
	wantOuts, _ := s.Run(res.Records, core.DefaultConfig(), seqDP)
	if len(wantOuts) == 0 {
		t.Fatal("reference detector found nothing; equivalence would be vacuous")
	}

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := &metrics.ProbeStats{}
			engDP := s.NewSimDataPlane(res, 1<<30)
			sched := probe.NewScheduler(probe.OverDataPlane(engDP), probe.Config{
				Workers: 4, Metrics: m, // unbounded budget, no cache: exact sync parity
			})
			defer sched.Close()
			gotOuts := runProbed(t, s, res.Records, core.DefaultConfig(), sched, shards)

			if !reflect.DeepEqual(gotOuts, wantOuts) {
				want := map[string]bool{}
				for _, o := range wantOuts {
					want[locatedKey(o)] = true
				}
				got := map[string]bool{}
				for _, o := range gotOuts {
					got[locatedKey(o)] = true
				}
				for k := range want {
					if !got[k] {
						t.Errorf("sync located %s, async did not", k)
					}
				}
				for k := range got {
					if !want[k] {
						t.Errorf("async located %s, sync did not", k)
					}
				}
				t.Errorf("outages diverge byte-for-byte (async %d, sync %d):\n async: %+v\n sync:  %+v",
					len(gotOuts), len(wantOuts), gotOuts, wantOuts)
			}
			if m.Campaigns.Load() == 0 {
				t.Error("async run submitted no campaigns; equivalence would be vacuous")
			}
			if m.Denied.Load() != 0 {
				t.Errorf("unbounded budget denied %d probes", m.Denied.Load())
			}
		})
	}
}

// TestProbeSchedulerBudgetStarvation is the end-to-end budget scenario: a
// one-probe budget over a window wider than the stream leaves later
// campaigns unmeasured. Confirmation campaigns then promote unvalidated
// (the sync no-data contract), so every located outage past the first
// verdict must carry DataPlaneChecked=false, and the denial counter must
// account for the starved probes.
func TestProbeSchedulerBudgetStarvation(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: time.Hour,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}

	m := &metrics.ProbeStats{}
	engDP := s.NewSimDataPlane(res, 1<<30)
	sched := probe.NewScheduler(probe.OverDataPlane(engDP), probe.Config{
		Workers: 4, Budget: 1, Window: 365 * 24 * time.Hour, Metrics: m,
	})
	defer sched.Close()
	outs := runProbed(t, s, res.Records, core.DefaultConfig(), sched, 2)

	if m.Executed.Load() != 1 {
		t.Fatalf("executed = %d probes under a 1-probe budget", m.Executed.Load())
	}
	if m.Denied.Load() == 0 {
		t.Fatal("budget starvation denied nothing; scenario is vacuous")
	}
	checked := 0
	for _, o := range outs {
		if o.DataPlaneChecked {
			checked++
		}
	}
	if checked > 1 {
		t.Fatalf("%d outages claim data-plane validation under a 1-probe budget", checked)
	}
}
