package pipeline

import (
	"testing"
	"time"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/simulate"
	"kepler/internal/topology"
)

var (
	tStart = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	tEnd   = time.Date(2016, 2, 1, 0, 0, 0, 0, time.UTC)
)

func buildStack(t *testing.T) *Stack {
	t.Helper()
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Build(w, 77)
}

// bestTarget picks the facility with the most dictionary-covered members —
// the most trackable facility.
func bestTarget(s *Stack) colo.FacilityID {
	var best colo.FacilityID
	bestN := 0
	for _, f := range s.Map.Facilities() {
		_, n := s.Map.Trackable(f.ID, s.Dict.Covers)
		if n > bestN {
			best, bestN = f.ID, n
		}
	}
	return best
}

func TestStackBuild(t *testing.T) {
	s := buildStack(t)
	if s.Dict.Len() == 0 {
		t.Fatal("empty dictionary")
	}
	if s.Map.NumFacilities() != s.World.Map.NumFacilities() {
		t.Fatalf("facility count drifted: %d vs %d", s.Map.NumFacilities(), s.World.Map.NumFacilities())
	}
	// Facility IDs must align between the ground-truth and noisy maps
	// (same address key order).
	for _, f := range s.World.Map.Facilities() {
		nf, ok := s.Map.Facility(f.ID)
		if !ok || nf.Addr.Key() != f.Addr.Key() {
			t.Fatalf("facility %d misaligned across maps", f.ID)
		}
	}
	for _, ix := range s.World.Map.IXPs() {
		nix, ok := s.Map.IXP(ix.ID)
		if !ok || nix.URL != ix.URL {
			t.Fatalf("IXP %d misaligned across maps", ix.ID)
		}
	}
	if s.Orgs.NumOrgs() == 0 {
		t.Fatal("no organizations")
	}
	if s.Dict.NumRouteServers() == 0 {
		t.Fatal("no route servers in dictionary")
	}
}

func TestEndToEndFacilityOutageDetection(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	if target == 0 {
		t.Fatal("no trackable facility")
	}

	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour), // well past the 2-day stability window
		Duration: 45 * time.Minute,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	outages, incidents := s.Run(res.Records, core.DefaultConfig(), nil)
	if len(incidents) == 0 {
		t.Fatal("no incidents at all")
	}
	var hit *core.Outage
	for i := range outages {
		o := &outages[i]
		if o.PoP == colo.FacilityPoP(target) {
			hit = o
		}
	}
	if hit == nil {
		t.Fatalf("facility %d outage not detected; outages=%+v", target, outages)
	}
	// Start time within a couple of bins of the injected start.
	if d := hit.Start.Sub(ev.Start); d < -3*time.Minute || d > 3*time.Minute {
		t.Errorf("detected start off by %v", d)
	}
	// Duration within reason (updates jitter by up to ~45 s each way).
	if hit.Duration() < 30*time.Minute || hit.Duration() > 75*time.Minute {
		t.Errorf("detected duration %v, injected 45m", hit.Duration())
	}
}

func TestEndToEndIXPOutageDetection(t *testing.T) {
	s := buildStack(t)
	// Most trackable IXP.
	var target colo.IXPID
	bestN := 0
	for _, ix := range s.Map.IXPs() {
		n := 0
		for _, m := range ix.Members {
			if s.Dict.Covers(m) {
				n++
			}
		}
		if n > bestN {
			target, bestN = ix.ID, n
		}
	}
	if target == 0 {
		t.Fatal("no trackable IXP")
	}

	ev := simulate.Event{
		ID: 0, Kind: simulate.EvIXP, IXP: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: 2 * time.Hour,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	outages, _ := s.Run(res.Records, core.DefaultConfig(), nil)

	found := false
	for _, o := range outages {
		// Either the IXP itself or one of its fabric facilities/city is an
		// acceptable localization; the IXP PoP is the ideal answer.
		if o.PoP == colo.IXPPoP(target) {
			found = true
		}
	}
	if !found {
		t.Fatalf("IXP %d outage not localized: %+v", target, outages)
	}
}

func TestEndToEndQuietPeriodNoFalsePositives(t *testing.T) {
	s := buildStack(t)
	res, err := simulate.Render(s.World, nil, tStart, tEnd, simulate.RenderConfig{Seed: 5, SessionResets: 4})
	if err != nil {
		t.Fatal(err)
	}
	outages, _ := s.Run(res.Records, core.DefaultConfig(), nil)
	if len(outages) != 0 {
		t.Errorf("false positives on a quiet stream: %+v", outages)
	}
}

func TestEndToEndLinkFlapsNoPoPOutages(t *testing.T) {
	s := buildStack(t)
	cfg := simulate.ScheduleConfig{
		Seed: 11, Start: tStart.Add(3 * 24 * time.Hour), End: tEnd.Add(-3 * 24 * time.Hour),
		LinkOutages: 12, MinMembers: 3,
	}
	events := simulate.GenerateSchedule(s.World, cfg)
	res, err := simulate.Render(s.World, events, tStart, tEnd, simulate.RenderConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	outages, incidents := s.Run(res.Records, core.DefaultConfig(), nil)
	// Link flaps must classify as link/AS-level, not PoP outages.
	if len(outages) != 0 {
		t.Errorf("link flaps produced PoP outages: %+v", outages)
	}
	for _, inc := range incidents {
		if inc.Kind == core.IncidentPoP {
			t.Errorf("link flap classified as PoP incident: %+v", inc)
		}
	}
}

func TestEndToEndWithDataPlane(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: time.Hour,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dp := s.NewSimDataPlane(res, 5000)
	outages, _ := s.Run(res.Records, core.DefaultConfig(), dp)

	found := false
	for _, o := range outages {
		if o.PoP == colo.FacilityPoP(target) {
			found = true
			if !o.DataPlaneChecked {
				t.Error("data plane was not consulted")
			}
			if !o.Confirmed {
				t.Error("genuine outage not confirmed by data plane")
			}
		}
	}
	if !found {
		t.Fatal("outage vanished with data plane enabled")
	}
	if dp.Used() == 0 {
		t.Error("no targeted traceroutes issued")
	}
}

func TestDictionaryCoversEnoughASes(t *testing.T) {
	s := buildStack(t)
	users := 0
	for _, a := range s.World.ASes {
		if a.UsesCommunities && a.Documents {
			users++
		}
	}
	covered := len(s.Dict.CoveredASNs())
	if covered == 0 {
		t.Fatal("dictionary covers nothing")
	}
	// Mining should recover the vast majority of documenting operators.
	if float64(covered) < 0.8*float64(users) {
		t.Errorf("dictionary covers %d of %d documenting ASes", covered, users)
	}
}

func TestTrackableFacilitiesExist(t *testing.T) {
	s := buildStack(t)
	trackable := 0
	for _, f := range s.Map.Facilities() {
		if ok, _ := s.Map.Trackable(f.ID, func(a bgp.ASN) bool { return s.Dict.Covers(a) }); ok {
			trackable++
		}
	}
	if trackable == 0 {
		t.Fatal("no trackable facilities — detection would be impossible")
	}
	t.Logf("trackable facilities: %d / %d", trackable, s.Map.NumFacilities())
}
