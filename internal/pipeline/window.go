package pipeline

import (
	"sync"
	"time"

	"kepler/internal/colo"
	"kepler/internal/simulate"
)

// keepWindows is how many rendered windows the rolling data plane retains:
// probe campaigns lag their signal bin by at least one barrier, so a query
// can land in the window just rotated out; anything older than two windows
// is stale archive the platform no longer covers.
const keepWindows = 2

// WindowDataPlane is a core.DataPlane over a rolling sequence of rendered
// scenario windows — the shape a probe backend needs when the daemon's
// source is the endless Synthetic generator rather than one batch render.
// Install hands it each freshly rendered window (live.SyntheticConfig's
// OnWindow hook); Confirm routes each query to the window containing the
// queried instant and answers no-data outside the retained horizon.
//
// Install runs on the ingest goroutine while Confirm runs on probe worker
// goroutines; the window list is mutex-guarded. The per-window SimDataPlane
// itself is not safe for concurrent use — callers serialize Confirm (the
// probe scheduler's OverDataPlane adapter does).
type WindowDataPlane struct {
	stack  *Stack
	budget int

	mu   sync.Mutex
	wins []simWindow // oldest first, at most keepWindows
}

type simWindow struct {
	start, end time.Time
	dp         *SimDataPlane
}

// NewWindowDataPlane builds a rolling data plane; budget is the traceroute
// platform budget granted to each window's substrate.
func (s *Stack) NewWindowDataPlane(budget int) *WindowDataPlane {
	return &WindowDataPlane{stack: s, budget: budget}
}

// Install registers a rendered window, evicting the oldest beyond the
// retention horizon. Its signature matches live.SyntheticConfig.OnWindow.
func (w *WindowDataPlane) Install(res *simulate.Result, start, end time.Time) {
	dp := w.stack.NewSimDataPlane(res, w.budget)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wins = append(w.wins, simWindow{start: start, end: end, dp: dp})
	if len(w.wins) > keepWindows {
		w.wins = w.wins[len(w.wins)-keepWindows:]
	}
}

// Confirm implements core.DataPlane.
func (w *WindowDataPlane) Confirm(pop colo.PoP, at time.Time) (bool, bool) {
	w.mu.Lock()
	var dp *SimDataPlane
	for _, win := range w.wins {
		if !at.Before(win.start) && at.Before(win.end) {
			dp = win.dp
			break
		}
	}
	w.mu.Unlock()
	if dp == nil {
		return false, false // outside the retained archive: unmeasurable
	}
	return dp.Confirm(pop, at)
}
