package pipeline

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"kepler/internal/core"
	"kepler/internal/mrt"
	"kepler/internal/simulate"
)

// TestEngineEquivalenceOnSimulation drives the same seeded simulation
// stream — a facility outage rendered over the full synthetic Internet —
// through the sequential Detector and the sharded Engine at several shard
// counts, asserting byte-for-byte identical Outage and Incident output.
// This is the system-level counterpart of the randomized core test: real
// dictionary, real colocation map, real noise.
func TestEngineEquivalenceOnSimulation(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	if target == 0 {
		t.Fatal("no trackable facility")
	}
	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: 45 * time.Minute,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	wantOuts, wantIncs := s.Run(res.Records, core.DefaultConfig(), nil)
	if len(wantOuts) == 0 {
		t.Fatal("reference detector found nothing; equivalence would be vacuous")
	}
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			gotOuts, gotIncs := s.RunEngine(res.Records, core.DefaultConfig(), nil, shards)
			if !reflect.DeepEqual(gotOuts, wantOuts) {
				t.Errorf("outages diverge:\n engine:   %+v\n detector: %+v", gotOuts, wantOuts)
			}
			if !reflect.DeepEqual(gotIncs, wantIncs) {
				t.Errorf("incidents diverge (%d vs %d)", len(gotIncs), len(wantIncs))
			}
		})
	}
}

// TestEngineEquivalenceParallelInvestigator repeats the full-scenario
// equivalence check with the bin-close signal investigation fanned out
// across a worker pool: at every worker count the engine must stay
// byte-for-byte identical to the sequential detector. The rendered archive
// leads with a table dump, so this also drives Engine.BootstrapRIB through
// RunEngine on every subtest.
func TestEngineEquivalenceParallelInvestigator(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	if target == 0 {
		t.Fatal("no trackable facility")
	}
	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: 45 * time.Minute,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Kind != mrt.KindRIB {
		t.Fatal("rendered archive does not lead with a table dump; RIB bootstrap would be vacuous")
	}

	wantOuts, wantIncs := s.Run(res.Records, core.DefaultConfig(), nil)
	if len(wantOuts) == 0 {
		t.Fatal("reference detector found nothing; equivalence would be vacuous")
	}
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("invest-workers=%d", workers), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.InvestWorkers = workers
			gotOuts, gotIncs := s.RunEngine(res.Records, cfg, nil, 4)
			if !reflect.DeepEqual(gotOuts, wantOuts) {
				t.Errorf("outages diverge:\n engine:   %+v\n detector: %+v", gotOuts, wantOuts)
			}
			if !reflect.DeepEqual(gotIncs, wantIncs) {
				t.Errorf("incidents diverge (%d vs %d)", len(gotIncs), len(wantIncs))
			}
		})
	}
}

// TestEngineEquivalenceWithDataPlane repeats the check with the simulated
// data plane attached: probe order, budget consumption and confirmation
// flags must all line up.
func TestEngineEquivalenceWithDataPlane(t *testing.T) {
	s := buildStack(t)
	target := bestTarget(s)
	ev := simulate.Event{
		ID: 0, Kind: simulate.EvFacility, Facility: target,
		Start:    tStart.Add(5 * 24 * time.Hour),
		Duration: time.Hour,
	}
	res, err := simulate.Render(s.World, []simulate.Event{ev}, tStart, tEnd, simulate.RenderConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}

	seqDP := s.NewSimDataPlane(res, 5000)
	wantOuts, wantIncs := s.Run(res.Records, core.DefaultConfig(), seqDP)

	engDP := s.NewSimDataPlane(res, 5000)
	gotOuts, gotIncs := s.RunEngine(res.Records, core.DefaultConfig(), engDP, 4)
	if !reflect.DeepEqual(gotOuts, wantOuts) {
		t.Errorf("outages diverge:\n engine:   %+v\n detector: %+v", gotOuts, wantOuts)
	}
	if !reflect.DeepEqual(gotIncs, wantIncs) {
		t.Errorf("incidents diverge (%d vs %d)", len(gotIncs), len(wantIncs))
	}
	if engDP.Used() != seqDP.Used() {
		t.Errorf("traceroute budget spent %d, detector spent %d", engDP.Used(), seqDP.Used())
	}
}
