// The London case study of Section 6.2 (Figure 9): two colocation
// facilities in one city fail on consecutive days, with an AS-level
// de-peering between them acting as a decoy. The example demonstrates
// Kepler's headline capability — telling apart incidents that look alike at
// city aggregation — and the remote reach of a local outage (Figure 9c).
//
//	go run ./examples/london-outages
package main

import (
	"fmt"
	"log"
	"time"

	"kepler/internal/core"
	"kepler/internal/experiments"
)

func main() {
	cs, err := experiments.LondonCase()
	if err != nil {
		log.Fatal(err)
	}
	city, _ := cs.Stack.Geo.City(cs.City)
	fmt.Printf("case study city: %s\n", city.Name)
	for _, e := range cs.Events {
		label := map[int]string{0: "A (facility outage)", 1: "B (AS de-peering decoy)", 2: "C (facility outage)"}[e.ID]
		fmt.Printf("  event %-24s %s\n", label, e.Start.Format("01-02 15:04"))
	}
	fmt.Println()

	fmt.Println(experiments.Figure9a(cs).Render())
	fmt.Println(experiments.Figure9b(cs).Render())
	fmt.Println(experiments.Figure9c(cs).Render())

	// Run the detector over the case archive and show that A and C are
	// localized to buildings while B stays an AS-level incident.
	dp := cs.Stack.NewSimDataPlane(cs.Res, 100000)
	outages, incidents := cs.Stack.Run(cs.Res.Records, core.DefaultConfig(), dp)
	fmt.Println("detected outages:")
	for _, o := range outages {
		fmt.Printf("  %v %q %s -> %s (%s)\n", o.PoP, cs.Stack.World.PoPName(o.PoP),
			o.Start.Format("01-02 15:04"), o.End.Format("15:04"), o.Duration().Round(time.Minute))
	}
	asLevel := 0
	for _, inc := range incidents {
		if inc.Kind == core.IncidentAS {
			asLevel++
		}
	}
	fmt.Printf("AS-level incidents (the decoy and its echoes): %d\n", asLevel)
}
