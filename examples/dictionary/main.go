// Dictionary mining walk-through: the Section 3.2 pipeline applied to a
// hand-written operator document in the style of the paper's Figure 4
// (Init7's published community scheme). Shows tokenization-driven entity
// recognition, voice-based inbound/outbound filtering, and how the mined
// dictionary annotates a BGP route's communities with physical locations.
//
//	go run ./examples/dictionary
package main

import (
	"fmt"
	"net/netip"

	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/geo"
)

func main() {
	world := geo.DefaultWorld()

	// A miniature colocation map: the two facilities and the IXP the
	// paper's Figure 4 example mentions.
	b := colo.NewBuilder(world)
	lax := colo.Address{Street: "900 N Alameda St", Postcode: "90012", Country: "US"}
	the := colo.Address{Street: "Coriander Ave", Postcode: "E14 2AA", Country: "GB"}
	b.AddFacility(colo.FacilityRecord{
		Source: "peeringdb", Name: "Coresite LAX-1", Operator: "Coresite",
		Addr: lax, CityHint: "Los Angeles", Members: []bgp.ASN{13030, 20940},
	})
	b.AddFacility(colo.FacilityRecord{
		Source: "peeringdb", Name: "Telehouse East London", Operator: "Telehouse",
		Addr: the, CityHint: "London", Members: []bgp.ASN{13030, 20940, 2914},
	})
	b.AddIXP(colo.IXPRecord{
		Source: "peeringdb", Name: "LINX", URL: "https://linx.net", CityHint: "London",
		ASNs:          []bgp.ASN{8714},
		LANs:          []netip.Prefix{netip.MustParsePrefix("195.66.224.0/22")},
		Members:       []bgp.ASN{13030, 20940, 2914},
		FacilityAddrs: []colo.Address{the},
	})
	cmap := b.Build()

	// The documentation to mine — note the mix of inbound entries
	// (passive voice: kept) and traffic-engineering actions (active
	// voice: filtered out).
	doc := communities.Document{
		ASN:    13030,
		Source: "irr",
		Text: `BGP communities for customers of AS13030.

13030:51904 - routes received at Coresite LAX-1
13030:51702 - routes received at Telehouse East London
13030:4006 - routes received from public peer at LINX
13030:50100 - routes learned in Los Angeles
13030:9999 - announce to all peers
13030:666 - blackhole these prefixes`,
	}
	fmt.Println("--- document ---")
	fmt.Println(doc.Text)

	dict := communities.NewMiner(world, cmap).Mine([]communities.Document{doc})
	fmt.Println("--- mined dictionary ---")
	for _, e := range dict.Entries() {
		fmt.Printf("%-14s -> %-12s %q\n", e.Community, e.PoP, e.Label)
	}
	fmt.Printf("(outbound values 9999 and 666 were filtered by grammatical voice)\n\n")

	// Annotate a route the way Kepler's input module does: each location
	// community binds to the AS-path hop of the operator that set it.
	path := bgp.Path{3356, 13030, 20940}
	comms := bgp.Communities{
		bgp.MakeCommunity(13030, 51904),
		bgp.MakeCommunity(8714, 100), // route-server community: IXP crossing
	}
	fmt.Printf("--- annotating path %v with communities %v ---\n", path, comms)
	for _, hop := range dict.Annotate(path, comms, cmap) {
		fmt.Printf("community %-13s: %v received from %v at %v\n",
			hop.Community, hop.Near, hop.Far, hop.PoP)
	}
}
