// The AMS-IX case study of Sections 6.2 and 6.3: a loop in the switching
// fabric takes the largest exchange down for half an hour. The example
// shows the outage through the three community granularities (Figure 8c),
// the control- and data-plane convergence behaviour (Figures 10a and 10b),
// the RTT impact on rerouted paths (Figure 10c), and the traffic dip at a
// remote exchange hundreds of kilometres away (Figure 10d).
//
//	go run ./examples/amsix-outage
package main

import (
	"fmt"
	"log"

	"kepler/internal/experiments"
)

func main() {
	cs, err := experiments.AMSIXCase()
	if err != nil {
		log.Fatal(err)
	}
	ix, _ := cs.Stack.Map.IXP(cs.IXP)
	fmt.Printf("case study: %q (%d members), fabric outage %s for %s\n\n",
		ix.Name, len(ix.Members),
		cs.Events[0].Start.Format("2006-01-02 15:04"), cs.Events[0].Duration)

	fmt.Println(experiments.Figure8c(cs).Render())
	fmt.Println(experiments.Figure10a(cs).Render())
	fmt.Println(experiments.Figure10b(cs).Render())
	fmt.Println(experiments.Figure10c(cs).Render())
	fmt.Println(experiments.Figure10d(cs).Render())
}
