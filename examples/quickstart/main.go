// Quickstart: build a small synthetic Internet, inject one colocation
// facility outage, stream the resulting BGP updates through Kepler's
// sharded concurrent engine, and print the detected outage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"kepler"
	"kepler/internal/colo"
	"kepler/internal/pipeline"
	"kepler/internal/probe"
	"kepler/internal/simulate"
	"kepler/internal/topology"
)

func main() {
	// 1. A world: ASes, facilities, IXPs, and the physical links between
	// them. Everything is deterministic for a given seed.
	world, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. The Kepler stack: noisy colocation sources are merged into a map,
	// operator documentation is mined into a community dictionary, and
	// WHOIS registrations become an AS-to-organization table.
	stack := pipeline.Build(world, 77)
	fmt.Printf("dictionary: %d location communities from %d operators\n",
		stack.Dict.Len(), len(stack.Dict.CoveredASNs()))

	// 3. Pick the most trackable facility and take it down for 45 minutes,
	// five days into the scenario (past the 2-day stable-path window).
	var target colo.FacilityID
	best := 0
	for _, f := range stack.Map.Facilities() {
		if _, n := stack.Map.Trackable(f.ID, stack.Dict.Covers); n > best {
			best, target = n, f.ID
		}
	}
	fac, _ := stack.Map.Facility(target)
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(14 * 24 * time.Hour)
	outage := simulate.Event{
		Kind: simulate.EvFacility, Facility: target,
		Start:    start.Add(5 * 24 * time.Hour).Add(10 * time.Hour),
		Duration: 45 * time.Minute,
	}
	fmt.Printf("injecting: %q down %s -> %s\n",
		fac.Name, outage.Start.Format("Jan 2 15:04"), outage.End().Format("15:04"))

	res, err := simulate.Render(world, []simulate.Event{outage}, start, end,
		simulate.RenderConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d BGP records from %d collectors\n",
		len(res.Records), len(world.Collectors))

	// 4. Stream the records through the engine: the per-path monitoring
	// state is hash-partitioned across shard workers (one per core here),
	// and the Section 4.3 signal investigation runs at each 60 s bin
	// boundary over their merged state. The output is byte-for-byte what
	// the sequential kepler.NewDetector would emit. The data plane
	// validates suspected epicenters with targeted traceroutes.
	cfg := kepler.DefaultConfig()
	cfg.Tracing = true // record the evidence chain behind each detection
	eng := kepler.NewEngine(cfg, stack.Dict, stack.Map, stack.Orgs, runtime.GOMAXPROCS(0))
	defer eng.Close()
	eng.SetDataPlane(stack.NewSimDataPlane(res, 50000))

	// Lifecycle hooks fire at bin boundaries as detection state changes —
	// the same callbacks cmd/keplerd bridges onto its event bus and SSE
	// stream. Here they narrate the outage in real time and collect its
	// provenance trace: with Config.Tracing on, every resolved outage is
	// followed by the evidence that produced it (keplerd serves the same
	// trace at /v1/outages/{id}/trace). Tracing never changes what is
	// detected — output is byte-for-byte identical either way.
	var traces []kepler.OutageTrace
	eng.SetHooks(kepler.Hooks{
		OutageOpened: func(s kepler.OutageStatus) {
			fmt.Printf("  [live] outage opened at %v: %d paths diverted\n", s.PoP, s.WaitingPaths)
		},
		TraceRecorded: func(tr kepler.OutageTrace) { traces = append(traces, tr) },
	})

	var outages []kepler.Outage
	for _, rec := range res.Records {
		outages = append(outages, eng.Process(rec)...)
	}
	outages = append(outages, eng.Flush(end)...)
	fmt.Printf("ingest: %v\n", eng.Stats())

	// 5. Report — including why Kepler believes it. Each trace chapter is
	// one bin's evidence: the per-AS divergence signals against their
	// stable baselines, the localization walk (candidates considered and
	// eliminated), and the data-plane verdict.
	for i, o := range outages {
		name := world.PoPName(o.PoP)
		fmt.Printf("\nDETECTED %q (%v)\n", name, o.PoP)
		fmt.Printf("  window:    %s -> %s (%s; injected 45m)\n",
			o.Start.Format("Jan 2 15:04"), o.End.Format("15:04"),
			o.Duration().Round(time.Minute))
		fmt.Printf("  confirmed: %v (data plane)\n", o.Confirmed)
		fmt.Printf("  impact:    %d ASes, %d monitored paths diverted\n",
			len(o.AffectedASes), o.DivertedPaths)
		if i < len(traces) { // trace i describes resolved outage i
			tr := traces[i]
			fmt.Printf("  evidence:  %d chapter(s)\n", len(tr.Chapters))
			for _, ch := range tr.Chapters {
				fmt.Printf("    bin %s: %d signal(s) at %v -> %s",
					ch.Bin.Format("15:04"), ch.TotalSignals, ch.SignalPoP, ch.Kind)
				for _, st := range ch.Steps {
					fmt.Printf("; %s: %s", st.Stage, st.Outcome)
				}
				if ch.Probe != nil {
					fmt.Printf("; probe: %s", ch.Probe.Outcome)
				}
				fmt.Println()
			}
		}
	}
	if len(outages) == 0 {
		fmt.Println("no outages detected — unexpected; try a different seed")
	}

	// 6. The same validation also runs asynchronously: wire a probe
	// scheduler instead of the inline data plane and a suspected epicenter
	// parks as a probe campaign — deduplicated, prioritized (facility >
	// IXP > city), budgeted, measured concurrently — whose verdict
	// promotes, refutes or expires it at the next bin barrier. With an
	// unbounded budget the located outages are identical to the inline
	// path; unlike it, a bin close never blocks on a measurement platform.
	// (No cooldown cache here: exact parity with the inline path means
	// re-measuring, exactly as openOutageFor would.)
	sched := probe.NewScheduler(
		probe.OverDataPlane(stack.NewSimDataPlane(res, 50000)),
		probe.Config{Workers: 4},
	)
	defer sched.Close()
	async := kepler.NewEngine(kepler.DefaultConfig(), stack.Dict, stack.Map, stack.Orgs, runtime.GOMAXPROCS(0))
	defer async.Close()
	async.SetProber(sched)
	var asyncOutages []kepler.Outage
	for _, rec := range res.Records {
		asyncOutages = append(asyncOutages, async.Process(rec)...)
	}
	asyncOutages = append(asyncOutages, async.Flush(end)...)
	fmt.Printf("\nasync probe scheduler located %d outage(s) — same set as the inline data plane (%d)\n",
		len(asyncOutages), len(outages))

	// 7. The same pipeline runs as a long-lived service: cmd/keplerd wires
	// a streamed source into this engine and serves results over HTTP while
	// ingesting. With -data-dir the history is durable — kill and restart
	// the daemon and it recovers every outage it had reported, resumes SSE
	// sequence numbers, keeps pagination cursors valid, and re-parks any
	// probe campaign that was mid-flight. The engine also checkpoints its
	// full detection state every -checkpoint-interval of stream time, so a
	// restart resumes from the newest checkpoint and re-ingests at most one
	// interval of records instead of the whole archive (watch
	// store.resume_records in /v1/stats). With -probe-backend the daemon
	// runs this section's scheduler live (-synthetic mode), exposing
	// campaigns at /v1/probes and counters at /v1/stats and /metrics
	// (Prometheus text format):
	//
	//	go run ./cmd/topogen -seed 1 -days 30 -out archive.mrt
	//	go run ./cmd/keplerd -seed 1 -archive archive.mrt -data-dir data -checkpoint-interval 15m &
	//	curl localhost:8080/v1/outages/open                  # ongoing outages as JSON
	//	curl 'localhost:8080/v1/outages?limit=20'            # resolved history, page 1
	//	curl 'localhost:8080/v1/outages?after=20&limit=20'   # page 2 (see next_after)
	//	curl -N localhost:8080/v1/events                     # live SSE event stream
	//	curl localhost:8080/v1/outages/1/trace               # evidence chain behind outage 1
	//	curl localhost:8080/metrics                          # Prometheus exposition, incl.
	//	                                                     # kepler_bin_close_stage_seconds
	//	go run ./cmd/keplerd ... -log-format json -slow-bin-ms 250  # structured diagnostics
	//	kill -9 %2 && go run ./cmd/keplerd -seed 1 -archive archive.mrt -data-dir data &
	//	curl localhost:8080/v1/outages                       # history survived the kill
	//	curl localhost:8080/v1/stats                         # store.resume_records: suffix-only catch-up
	//	curl -N -H 'Last-Event-ID: 3' localhost:8080/v1/events  # replay missed events
	//	go run ./cmd/keplerd -seed 1 -synthetic -probe-backend sim -data-dir pdata &
	//	curl localhost:8080/v1/probes                        # in-flight campaigns + verdicts
	//
	// The serving tier scales past a handful of clients: an SSE relay
	// (-relay, on by default) holds the single upstream bus subscription
	// and fans events out to every /v1/events client through bounded
	// per-client queues — a thousand subscribers cost ingestion exactly
	// one — shedding the newest-joined clients first under overload.
	// History pages are served straight off the store's indexed segment
	// files through a small decoded-frame cache (-read-cache), and read
	// endpoints answer If-None-Match revalidations with 304s between bin
	// closes:
	//
	//	curl -N 'localhost:8080/v1/events?kinds=outage_opened,outage_resolved' &  # client 1
	//	curl -N localhost:8080/v1/events &                   # client 2: same relay, no new
	//	                                                     # bus subscription (see /v1/stats)
	//	curl -i localhost:8080/v1/outages/open               # 200 + ETag
	//	curl -H 'If-None-Match: "<etag>"' -i localhost:8080/v1/outages/open  # 304, empty body
	//	go run ./cmd/keplerload -addr http://localhost:8080 -sse-sweep 10,100,1000 \
	//	    -duration 10s -out sweep.json                    # quantify the fan-out tier
	fmt.Println("\nnext: run this pipeline as a daemon — see cmd/keplerd (HTTP API + SSE relay fan-out, durable -data-dir with checkpointed restarts, -probe-backend)")
}
