module kepler

go 1.22
