package kepler_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation: run `go test -bench=. -benchmem` at the module root. Each
// BenchmarkFigure*/BenchmarkTable* target rebuilds one artifact per
// iteration over the shared historical or case-study environment (built
// once, like the paper's archived BGP corpus) and reports rows/series via
// b.Log on the first iteration. Component micro-benchmarks at the bottom
// measure the hot paths of the pipeline itself.

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	kepler "kepler"
	"kepler/internal/bgp"
	"kepler/internal/colo"
	"kepler/internal/core"
	"kepler/internal/experiments"
	"kepler/internal/geo"
	"kepler/internal/mrt"
	"kepler/internal/probe"
	"kepler/internal/routing"
	"kepler/internal/topology"
)

func histEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.Historical()
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func amsCase(b *testing.B) *experiments.CaseStudy {
	b.Helper()
	cs, err := experiments.AMSIXCase()
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

func lonCase(b *testing.B) *experiments.CaseStudy {
	b.Helper()
	cs, err := experiments.LondonCase()
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

// logOnce prints the regenerated artifact on the first iteration only.
func logOnce(b *testing.B, i int, render func() string) {
	if i == 0 {
		b.Log("\n" + render())
	}
}

// BenchmarkFigure1 regenerates the detected-vs-reported outage timeline.
func BenchmarkFigure1(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure3 regenerates the community-usage growth series.
func BenchmarkFigure3(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure5 regenerates the geographic spread of trackable
// infrastructure.
func BenchmarkFigure5(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkTable1 regenerates the facility-coverage table.
func BenchmarkTable1(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure7a regenerates the threshold-sensitivity sweep (this one
// re-runs detection per threshold and is the most expensive target).
func BenchmarkFigure7a(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7a(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure7b regenerates the facility-trackability scatter.
func BenchmarkFigure7b(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7b(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure7c regenerates the monthly community-coverage fractions.
func BenchmarkFigure7c(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7c(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure8a regenerates the ground-truth mapping validation.
func BenchmarkFigure8a(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8a(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure8b regenerates the outage-duration CDFs.
func BenchmarkFigure8b(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8b(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure8c regenerates the AMS-IX case study granularity series.
func BenchmarkFigure8c(b *testing.B) {
	cs := amsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8c(cs)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure9a regenerates the London two-outage granularity series.
func BenchmarkFigure9a(b *testing.B) {
	cs := lonCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9a(cs)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure9b regenerates the per-facility affected-path series.
func BenchmarkFigure9b(b *testing.B) {
	cs := lonCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9b(cs)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure9c regenerates the remote-impact distance distribution.
func BenchmarkFigure9c(b *testing.B) {
	cs := lonCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9c(cs)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure10a regenerates the BGP convergence curve.
func BenchmarkFigure10a(b *testing.B) {
	cs := amsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10a(cs)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure10b regenerates the traceroute convergence curve.
func BenchmarkFigure10b(b *testing.B) {
	cs := amsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10b(cs)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure10c regenerates the RTT impact distributions.
func BenchmarkFigure10c(b *testing.B) {
	cs := amsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10c(cs)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkFigure10d regenerates the remote-IXP traffic series.
func BenchmarkFigure10d(b *testing.B) {
	cs := amsCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10d(cs)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkDictionaryStats regenerates the Section 3.2 dictionary numbers
// and attrition comparison.
func BenchmarkDictionaryStats(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.DictionaryStats(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkValidation regenerates the Section 5.3 TP/FP/FN accounting.
func BenchmarkValidation(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Validation(env)
		logOnce(b, i, r.Render)
	}
}

// BenchmarkSummaryStats regenerates the Section 6.1 headline statistics.
func BenchmarkSummaryStats(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Summary(env)
		logOnce(b, i, r.Render)
	}
}

// --- ablation benches (DESIGN.md design decisions) ---

// BenchmarkAblationThresholds sweeps the Tfail knob, the core calibration
// the paper's Figure 7a justifies.
func BenchmarkAblationThresholds(b *testing.B) {
	env := histEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure7a(env)
	}
}

// BenchmarkAblationPerASGrouping compares detection with the paper's
// per-AS signal grouping against aggregate-only thresholding (the
// Section 4.2 design decision): the aggregate variant misses partial
// outages masked by large ASes.
func BenchmarkAblationPerASGrouping(b *testing.B) {
	env := histEnv(b)
	records := env.Res.Records
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grouped := kepler.DefaultConfig()
		aggregate := kepler.DefaultConfig()
		aggregate.DisablePerASGrouping = true
		og, _ := env.Stack.Run(records, grouped, nil)
		oa, _ := env.Stack.Run(records, aggregate, nil)
		if i == 0 {
			b.Logf("per-AS grouping: %d outages; aggregate-only: %d outages (grouping must not lose detections)",
				len(og), len(oa))
		}
		if len(og) < len(oa) {
			b.Fatalf("grouping lost detections: %d < %d", len(og), len(oa))
		}
	}
}

// --- component micro-benchmarks ---

// BenchmarkUpdateCodec measures the BGP UPDATE wire codec round trip.
func BenchmarkUpdateCodec(b *testing.B) {
	u := &bgp.Update{
		Announced: []netip.Prefix{netip.MustParsePrefix("184.84.242.0/24")},
		Attrs: bgp.Attributes{
			ASPath:  bgp.Path{13030, 3356, 20940},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			Communities: bgp.Communities{
				bgp.MakeCommunity(13030, 51904),
				bgp.MakeCommunity(13030, 4006),
			},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := bgp.MarshalUpdate(u)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := bgp.UnmarshalUpdate(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteComputation measures one per-origin valley-free table
// computation over the default world.
func BenchmarkRouteComputation(b *testing.B) {
	w, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	eng := routing.New(w)
	origin := w.ASes[len(w.ASes)/2].ASN
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := eng.ComputeOrigin(origin, nil)
		if t.Size() == 0 {
			b.Fatal("no routes")
		}
	}
}

// BenchmarkDetectorThroughput measures raw record-processing throughput of
// the detection pipeline over the historical archive.
func BenchmarkDetectorThroughput(b *testing.B) {
	env := histEnv(b)
	records := env.Res.Records
	if len(records) > 100000 {
		records = records[:100000]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := env.Stack.NewDetector(kepler.DefaultConfig())
		for _, rec := range records {
			det.Process(rec)
		}
		det.Flush(records[len(records)-1].Time)
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// BenchmarkEngineIngest measures multi-core ingestion throughput of the
// sharded engine over the historical archive, sweeping the shard count.
// records/sec is the headline metric; shards=1 approximates the
// sequential detector plus fan-out overhead, higher shard counts spread
// the per-path work (community annotation, baseline maintenance) across
// cores with the investigator synchronized at bin boundaries.
func BenchmarkEngineIngest(b *testing.B) {
	env := histEnv(b)
	records := env.Res.Records
	if len(records) > 100000 {
		records = records[:100000]
	}
	last := records[len(records)-1].Time
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := env.Stack.NewEngine(kepler.DefaultConfig(), shards)
				for _, rec := range records {
					eng.Process(rec)
				}
				eng.Flush(last)
				eng.Close()
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(len(records)*b.N)/secs, "records/sec")
			}
		})
	}
}

// BenchmarkRIBBootstrap measures the cold-start bulk load: the historical
// archive's leading table dump fed through Engine.BootstrapRIB, whose
// large per-shard batches let every shard worker build its partition of
// the path tables concurrently instead of trickling the dump through the
// per-record streaming path. records/sec is the headline metric; the
// spread across shard counts is the bootstrap parallelism.
func BenchmarkRIBBootstrap(b *testing.B) {
	env := histEnv(b)
	records := env.Res.Records
	n := 0
	for n < len(records) && records[n].Kind == mrt.KindRIB {
		n++
	}
	rib := records[:n]
	if len(rib) == 0 {
		b.Fatal("historical archive has no leading table dump")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := env.Stack.NewEngine(kepler.DefaultConfig(), shards)
				if _, err := eng.BootstrapRIB(rib); err != nil {
					b.Fatal(err)
				}
				eng.Flush(rib[len(rib)-1].Time)
				eng.Close()
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(len(rib)*b.N)/secs, "records/sec")
			}
		})
	}
}

// BenchmarkProbeScheduler measures the active-measurement subsystem's
// campaign throughput: per simulated bin it submits a burst of mixed
// facility/IXP/city campaigns against an instant backend and collects the
// verdicts at the barrier, sweeping the worker count. campaigns/sec is the
// headline metric; dedup and the verdict cache absorb part of the target
// volume exactly as they do in a live deployment.
func BenchmarkProbeScheduler(b *testing.B) {
	instant := probeBackendFunc(func(pop colo.PoP, _ time.Time) (bool, bool) {
		return pop.ID%3 != 0, true
	})
	t0 := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	const binsPerOp, campaignsPerBin = 8, 16
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := probe.NewScheduler(instant, probe.Config{
					Workers: workers, Cooldown: 5 * time.Minute, CacheSize: 256,
				})
				var id uint64
				collected := 0
				for bin := 0; bin < binsPerOp; bin++ {
					at := t0.Add(time.Duration(bin) * time.Minute)
					for c := 0; c < campaignsPerBin; c++ {
						id++
						s.Submit(core.ProbeRequest{ID: id, At: at, Candidates: []colo.PoP{
							colo.FacilityPoP(colo.FacilityID(c%7 + 1)),
							colo.IXPPoP(colo.IXPID(c%3 + 1)),
							colo.CityPoP(geo.CityID(c%5 + 1)),
						}})
					}
					collected += len(s.Collect(at.Add(time.Minute)))
				}
				s.Close()
				if collected != int(id) {
					b.Fatalf("collected %d of %d campaigns", collected, id)
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*binsPerOp*campaignsPerBin)/secs, "campaigns/sec")
			}
		})
	}
}

type probeBackendFunc func(colo.PoP, time.Time) (bool, bool)

func (f probeBackendFunc) Probe(pop colo.PoP, at time.Time) (bool, bool) { return f(pop, at) }

// BenchmarkMRTArchive measures archive serialization throughput.
func BenchmarkMRTArchive(b *testing.B) {
	env := histEnv(b)
	records := env.Res.Records
	if len(records) > 20000 {
		records = records[:20000]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countWriter
		w := mrt.NewWriter(&sink)
		for _, r := range records {
			if err := w.WriteRecord(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(sink.n)
	}
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
