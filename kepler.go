// Package kepler is the public API of this repository's reproduction of
// "Detecting Peering Infrastructure Outages in the Wild" (Giotsas et al.,
// ACM SIGCOMM 2017). Kepler detects outages of colocation facilities and
// IXPs purely from public BGP feeds by decoding location-encoding BGP
// community values through an automatically mined dictionary, correlating
// PoP-level path divergence against a colocation map, and validating the
// inferred epicenters against data-plane measurements.
//
// The facade re-exports the detection core; richer control lives in the
// internal packages, which the module's commands and examples exercise:
//
//   - internal/core        — the detection pipeline (this package's types)
//   - internal/communities — community dictionary + documentation miner
//   - internal/colo        — colocation map construction
//   - internal/bgpstream   — unified multi-collector record feeds
//   - internal/topology, internal/routing, internal/simulate — the
//     synthetic Internet used for evaluation
//
// A minimal deployment:
//
//	det := kepler.NewDetector(kepler.DefaultConfig(), dict, cmap, orgs)
//	for rec := range feed {
//	    for _, outage := range det.Process(rec) {
//	        log.Printf("outage at %v: %v..%v", outage.PoP, outage.Start, outage.End)
//	    }
//	}
package kepler

import (
	"kepler/internal/as2org"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/core"
)

// Core detection types, re-exported.
type (
	// Config carries Kepler's tuning parameters (thresholds, windows).
	Config = core.Config
	// Detector is the streaming detection pipeline.
	Detector = core.Detector
	// Outage is a completed PoP-level outage with duration and impact.
	Outage = core.Outage
	// Incident is one classified outage signal (link/AS/operator/PoP).
	Incident = core.Incident
	// IncidentKind is the signal classification granularity.
	IncidentKind = core.IncidentKind
	// DataPlane hooks targeted measurements into validation.
	DataPlane = core.DataPlane

	// Dictionary maps community values to physical PoPs.
	Dictionary = communities.Dictionary
	// ColocationMap answers AS/facility/IXP colocation queries.
	ColocationMap = colo.Map
	// PoP references a city, facility or IXP.
	PoP = colo.PoP
	// OrgTable maps ASes to the organizations operating them.
	OrgTable = as2org.Table
)

// Incident kinds, re-exported.
const (
	IncidentLink     = core.IncidentLink
	IncidentAS       = core.IncidentAS
	IncidentOperator = core.IncidentOperator
	IncidentPoP      = core.IncidentPoP
)

// DefaultConfig returns the paper's parameters: Tfail=10%, 60 s bins,
// 2-day stable window, 95% colocation margin, 50% restore fraction, 12 h
// oscillation gap.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewDetector builds a streaming detector over a mined dictionary, a
// merged colocation map and an optional AS-to-organization table.
func NewDetector(cfg Config, dict *Dictionary, cmap *ColocationMap, orgs *OrgTable) *Detector {
	return core.New(cfg, dict, cmap, orgs)
}
