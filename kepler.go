// Package kepler is the public API of this repository's reproduction of
// "Detecting Peering Infrastructure Outages in the Wild" (Giotsas et al.,
// ACM SIGCOMM 2017). Kepler detects outages of colocation facilities and
// IXPs purely from public BGP feeds by decoding location-encoding BGP
// community values through an automatically mined dictionary, correlating
// PoP-level path divergence against a colocation map, and validating the
// inferred epicenters against data-plane measurements.
//
// # Architecture: shards + investigator
//
// The detection pipeline is split into two layers. The per-path layer —
// community annotation, stable-baseline maintenance, divergence tracking
// (Section 4.2) — depends only on the records of each (vantage, prefix)
// path, so it is partitioned across N shard workers by a hash of the path
// key. The cross-path layer — per-AS thresholding, Section 4.3 signal
// investigation, and outage duration tracking — runs in a single
// investigator that synchronizes the shards at every 60 s bin boundary
// and reads their merged state. Two entry points expose the same
// semantics:
//
//   - Engine — the sharded concurrent pipeline (NewEngine). Scales record
//     ingestion across cores; for any stream it emits byte-for-byte the
//     same Outages and Incidents as the sequential path.
//   - Detector — the sequential pipeline (NewDetector), kept as the N=1
//     compatibility path with zero goroutines.
//
// Three ingest-speed mechanisms ride inside that contract. The shards keep
// their per-path records in pooled, recycled state structs with small
// slice-backed tag sets (no per-update map churn; withdrawn paths return
// their storage to per-shard free lists). The bin-close signal
// investigation optionally fans the independent per-PoP signal groups
// across a worker pool (Config.InvestWorkers; the classification is pure
// and results merge in deterministic sorted order, so output — including
// data-plane probe order — is identical at any worker count). And a
// cold-start table dump bulk-loads through Engine.BootstrapRIB, which
// batches the dump across all shard workers concurrently instead of
// trickling it through the per-record streaming path.
//
// # Live service layer
//
// On top of the engine sits a serving subsystem that turns batch replay
// into a long-running daemon (cmd/keplerd). The engine exposes lifecycle
// Hooks — outage opened/updated/resolved, incident classified, bin closed
// — fired synchronously at bin boundaries; internal/events bridges them
// onto an outage event bus with bounded per-subscriber queues (a stalled
// consumer loses only its own events, counted, and can never stall a bin
// close). internal/live supplies streamed record sources: a rate-controlled
// archive replayer (N× real time or maximum speed) and a synthetic
// world-driven generator for soak testing. internal/server serves the
// results over HTTP — /v1/outages, /v1/outages/open, /v1/incidents,
// /v1/stats, /healthz and an SSE stream at /v1/events — from an immutable
// state snapshot republished at each bin barrier, so API reads never
// contend with ingestion. The set of outages reported over the API equals
// the batch Detector output for the same record stream.
//
// # Durable history
//
// With a data directory configured (keplerd -data-dir), internal/store
// makes the detection record survive restarts: every lifecycle event is
// appended — synchronously, on the ingestion goroutine, at bin boundaries —
// to a length-prefixed, checksummed write-ahead log, compacted periodically
// into snapshot segments so disk stays bounded. On boot the store recovers
// the persisted history (truncating any torn tail left by a crash), the
// server serves it immediately, and the event bus resumes its sequence
// numbering where the previous process stopped, so SSE clients reconnecting
// with Last-Event-ID — even across the restart — replay exactly the events
// they missed. The daemon then re-ingests its source with the
// already-persisted callback prefix gated off (events.GateHooks):
// detection is deterministic, so a restart mid-archive yields the same
// resolved-outage history as one uninterrupted run. /v1/outages and
// /v1/incidents paginate over that history with stable cursor ids
// (?after=<id>&limit=<n>).
//
// # Serving at scale
//
// Read and event throughput scale independently of history size and
// client count. On the read side, compaction writes history entries
// into framed segment files with a per-segment offset index (rebuilt
// on open if missing or torn, keeping the CRC-verified prefix), and
// snapshots are incremental — each carries only the delta since the
// previous one, so compaction cost stops growing with history. The
// daemon boots from a bounded store summary rather than materializing
// the whole history in memory, and /v1/outages and /v1/incidents
// cursor pages are answered by seeking directly to the indexed frame
// through a bounded LRU of decoded entries (keplerd -read-cache): a
// deep cursor page costs O(page) regardless of history length. Read
// views are pre-marshaled at the bin barrier and every read endpoint
// carries a snapshot-generation ETag honoring If-None-Match — between
// bin closes a polling fleet revalidates with 304s instead of
// re-marshaling JSON. On the event side, an SSE relay tier (keplerd
// -relay, on by default) interposes between the bus and the clients:
// the relay holds the only upstream subscription and fans events to N
// downstream clients through per-client bounded queues with per-tenant
// kind filters and exactly-once Last-Event-ID resume, so a thousand
// SSE clients cost ingestion exactly one subscriber. Overload sheds
// the newest-joined clients first under an aggregate queue budget —
// a client stampede degrades the edge, never the detection pipeline —
// and each client flush coalesces queued events into a single buffered
// write. BENCH_pr10_serving.json quantifies the tiers under
// cmd/keplerload's client sweep.
//
// # Checkpointed recovery
//
// Catch-up re-ingestion is bounded by engine checkpoints rather than the
// stream length. Engine.Checkpoint (same semantics on Detector) exports
// the complete detection state at a bin barrier — path tables,
// stable-baseline indexes, per-peer session state, the investigator's
// incident log and outage tracker, pending probe confirmations — in a
// versioned, deterministic encoding: every collection is flattened sorted,
// so the bytes are identical regardless of shard count and a checkpoint
// restores (Engine.RestoreFrom) into a pipeline of any shard count.
// keplerd writes a checkpoint every -checkpoint-interval of stream time as
// a CRC-framed, atomically renamed segment beside the WAL (internal/store
// keeps the newest two); boot loads the recovered history, restores the
// newest valid checkpoint — falling back to the older one, then to a full
// re-ingest, on any corruption or version mismatch, never a partial
// restore — seeks the source to the checkpoint's record cursor
// (live.Resumable: the archive replayer skips ahead, the synthetic
// generator re-renders one window from its seed), and replays only the
// suffix under the same gate. A SIGKILL + checkpoint-restore run emits
// byte-for-byte the event sequence of an uninterrupted run (pinned by
// internal/server's restart equivalence tests at shards 1 and 4);
// store.resume_records in /v1/stats and /metrics reports the resume
// offset, so recovery cost is observable and bounded by one checkpoint
// interval.
//
// # Active measurement
//
// The paper's pipeline falls back to targeted traceroutes when the control
// plane cannot pin an epicenter (Section 4.3) and validates inferences
// against the data plane (Section 4.4). Two integration shapes exist. The
// synchronous DataPlane interface answers Confirm inline at bin close —
// the batch pipeline's mode. The asynchronous Prober (Engine.SetProber,
// internal/probe) instead parks the signal group as a pending
// confirmation and submits a probe campaign: the scheduler deduplicates
// targets against in-flight probes and a cooldown-guarded LRU verdict
// cache, orders execution by localization specificity (facility > IXP >
// city, newest signal first), enforces a sliding-window measurement
// budget (denied probes resolve as no-data, the exhausted-platform
// contract), and delivers verdicts at the next bin barrier, where the
// parked group is promoted to a located outage, suppressed as a
// data-plane-contradicted false positive, resolved unlocated, or expired
// after Config.ProbeTTL. With an unbounded budget and an instant backend
// the async path locates exactly the outages the synchronous path does —
// pinned by an equivalence test — while a slow measurement platform can
// no longer stall record ingestion. Campaign lifecycle surfaces through
// three more Hooks (probe requested/confirmed/expired), persists through
// the store WAL (a restarted keplerd recovers mid-flight campaigns), and
// serves at /v1/probes; keplerd enables it with -probe-backend and
// -probe-budget, and exports every counter at the Prometheus-format
// /metrics endpoint.
//
// # Observability
//
// Three layers make a running deployment explainable. Provenance traces
// (Config.Tracing, keplerd -trace) record, per resolved outage, the
// evidence chain that produced it: each bin's diverted-path samples with
// their stable-baseline counts, every localization step with the
// candidates considered and eliminated, collateral-damage folds into
// dominating epicenters, and probe campaign verdicts. The trace follows
// the outage through the resolution hook (Hooks.TraceRecorded, fired only
// when tracing is on — disabled, the published event sequence is
// byte-for-byte unchanged, and detection output never differs either way),
// persists through the store WAL and snapshots size-capped, and serves at
// GET /v1/outages/{id}/trace plus a "trace" SSE event kind. Staged
// bin-close latency (metrics.BinStageStats, Engine.SetBinStageStats)
// decomposes every bin close into fixed-bucket duration histograms —
// shard barrier, divert merge, probe collect, classify, finish, hooks —
// exported as JSON quantiles in /v1/stats and as Prometheus histogram
// series (kepler_bin_close_seconds, kepler_bin_close_stage_seconds) on
// /metrics; keplerd -slow-bin-ms logs a structured per-stage report for
// any bin close over the threshold. And both commands log diagnostics
// through log/slog — keplerd -log-format text|json, -log-level, with
// per-component loggers threaded into the source, store, probe scheduler
// and HTTP server — while report output (stdout, SSE, the JSON API) stays
// fixed-format.
//
// The feed-health watchdog (Config.FeedSilence, keplerd -feed-silence)
// watches the input side: every collector and (collector, peer) session
// is tracked on the stream clock and flagged degraded once silent past
// the threshold, recovered when it speaks again. The paper's detector
// reads dozens of independent BGP feeds, and a silently dead feed skews
// the diverted-path denominators long before it shows up in detection
// output — the watchdog makes that visible as feed_degraded /
// feed_recovered events (Hooks.FeedDegraded/FeedRecovered, their own SSE
// kinds), a per-session view with a live/known coverage ratio at
// /v1/health/feeds, and kepler_feed_* series at /metrics. Because it
// runs on stream time only, fires on the bin barrier, checkpoints with
// the engine and sits under the replay gate, it is deterministic across
// shard counts, replay speeds and restarts, and never perturbs detection
// output. keplerd -feed-floor turns coverage into readiness: /healthz
// reports 503 while the ratio sits below the floor.
//
// The serving path is measured from both sides. Server-side,
// metrics.HTTPStats records per-endpoint request latency and
// status-class histograms (kepler_http_request_seconds), the SSE
// delivery-lag histogram from bus publish to the completed client write
// (kepler_sse_delivery_lag_seconds), and per-subscriber queue depth and
// drop gauges (kepler_sse_queue_depth, kepler_sse_queue_dropped_total) —
// all under http, subscribers and feeds in /v1/stats and on /metrics.
// Client-side, cmd/keplerload soaks a running keplerd with concurrent
// API pollers and SSE consumers (including deliberately slow ones, which
// exercise the bounded-queue drop path) and emits a JSON report pairing
// client-observed latency quantiles with the server's own deltas over
// the same interval.
//
// # Determinism invariants
//
// Everything above rests on one promise: detection output is a pure
// function of the record stream — byte-for-byte identical across shard
// counts, invest-worker counts, restarts and async probing. The
// equivalence tests pin that promise at runtime; cmd/keplervet
// (internal/lint) enforces the coding contracts behind it mechanically,
// with zero dependencies beyond the go tool:
//
//   - maporder — map iteration in internal/core, internal/bgpstream and
//     internal/probe must not feed order-sensitive effects (slice appends
//     that escape the loop, hook/event callbacks, encoders, channel
//     sends, probe charging) unless the collect-then-sort idiom is used:
//     Go randomizes range-over-map order on purpose.
//   - walltime — the detection packages (core, bgpstream, pipeline,
//     traceroute) run on stream time; time.Now/Since/Sleep and friends
//     are flagged there unless allowlisted as instrumentation.
//   - hookbarrier — Hooks callbacks may fire only on the bin-close/flush
//     barrier path (closeBinOver, Flush, finishProbes and their exclusive
//     callees); anywhere else publishes state mid-bin and races the
//     shards.
//   - atomicstats — metrics *Stats counter fields must be atomic types
//     and accessed only through their atomic method sets (concurrent
//     writers, lock-free readers); *Snapshot copies are plain by design.
//   - syncclose — os.File writes in internal/store must reach an fsync
//     before a success return, and write errors must not be discarded (a
//     torn WAL frame must never be silent).
//
// Run the suite with `go run ./cmd/keplervet ./...` (exit 0 clean, 1 on
// findings; -json for the machine-readable form CI archives). A
// sanctioned exception is annotated in place with
// `//keplervet:ignore <analyzer> <reason>` — the reason is mandatory,
// and an ignore that no longer suppresses anything is itself reported.
//
// The facade re-exports the detection core; richer control lives in the
// internal packages, which the module's commands and examples exercise:
//
//   - internal/core        — the detection pipeline (this package's types)
//   - internal/probe       — the asynchronous probe scheduler (campaign
//     dedup, priorities, budgets, verdict cache, backends)
//   - internal/communities — community dictionary + documentation miner
//   - internal/colo        — colocation map construction
//   - internal/bgpstream   — unified multi-collector record feeds and the
//     record-to-shard fan-out stage
//   - internal/live        — streamed sources (archive replayer, synthetic
//     soak generator) and the engine pump
//   - internal/events      — the outage/incident event bus (with the
//     Last-Event-ID replay ring and the recovery replay gate)
//   - internal/server      — the HTTP JSON API + SSE stream
//   - internal/store       — the WAL-backed durable outage history
//   - internal/metrics     — evaluation stats plus ingestion counters
//     (records/sec, shard queue depth, bin lag), serving counters
//     (HTTP requests, SSE clients, bus drops) and store counters
//     (appends, compactions, recovery)
//   - internal/topology, internal/routing, internal/simulate — the
//     synthetic Internet used for evaluation
//
// A minimal concurrent deployment:
//
//	eng := kepler.NewEngine(kepler.DefaultConfig(), dict, cmap, orgs, 0) // 0: one shard per core
//	defer eng.Close()
//	for rec := range feed {
//	    for _, outage := range eng.Process(rec) {
//	        log.Printf("outage at %v: %v..%v", outage.PoP, outage.Start, outage.End)
//	    }
//	}
//	outages := eng.Flush(lastRecordTime) // drain open state at stream end
//
// The same pipeline as a queryable service:
//
//	topogen -seed 1 -days 30 -out archive.mrt            # render a scenario archive
//	keplerd -seed 1 -archive archive.mrt -data-dir data  # ingest + serve, durably
//	curl localhost:8080/v1/outages/open                  # ongoing outages, JSON
//	curl 'localhost:8080/v1/outages?limit=50'            # resolved history, first page
//	curl 'localhost:8080/v1/outages?after=50&limit=50'   # ... next page
//	curl -N localhost:8080/v1/events                     # live SSE stream (relay fan-out)
//	curl -i localhost:8080/v1/outages/open               # note the ETag header ...
//	curl -H 'If-None-Match: <etag>' localhost:8080/v1/outages/open   # ... 304 until next bin
//	curl localhost:8080/v1/health/feeds                  # per-collector/per-peer feed health
//	keplerload -addr http://localhost:8080 -duration 30s # soak the serving path, JSON report
//	keplerload -addr http://localhost:8080 -sse-sweep 10,100,1000 -duration 10s  # tier sweep
//	go run ./cmd/keplervet ./...                         # check the determinism contracts
//
// Restarting keplerd against the same -data-dir recovers and keeps serving
// the accumulated history; `curl -N -H 'Last-Event-ID: 42'
// localhost:8080/v1/events` replays everything after event 42 first.
package kepler

import (
	"kepler/internal/as2org"
	"kepler/internal/colo"
	"kepler/internal/communities"
	"kepler/internal/core"
)

// Core detection types, re-exported.
type (
	// Config carries Kepler's tuning parameters (thresholds, windows).
	Config = core.Config
	// Detector is the sequential streaming detection pipeline.
	Detector = core.Detector
	// Engine is the sharded concurrent detection pipeline: N path-state
	// shard workers plus a bin-synchronized investigator, with output
	// identical to Detector for any record stream.
	Engine = core.Engine
	// Outage is a completed PoP-level outage with duration and impact.
	Outage = core.Outage
	// Incident is one classified outage signal (link/AS/operator/PoP).
	Incident = core.Incident
	// IncidentKind is the signal classification granularity.
	IncidentKind = core.IncidentKind
	// DataPlane hooks targeted measurements into validation synchronously.
	DataPlane = core.DataPlane
	// Prober is the asynchronous measurement interface: probe campaigns
	// submitted at bin close, verdicts collected at later bin barriers
	// (implemented by internal/probe.Scheduler).
	Prober = core.Prober
	// ProbeRequest is one submitted probe campaign.
	ProbeRequest = core.ProbeRequest
	// ProbeResult is the measured outcome for one campaign candidate.
	ProbeResult = core.ProbeResult
	// ProbeVerdict is one completed campaign's per-candidate results.
	ProbeVerdict = core.ProbeVerdict
	// PendingConfirmation is a signal group parked awaiting its verdict.
	PendingConfirmation = core.PendingConfirmation
	// ProbeOutcome reports how a pending confirmation resolved.
	ProbeOutcome = core.ProbeOutcome
	// Hooks receives lifecycle callbacks (outage opened/updated/resolved,
	// incident classified, bin closed) at bin boundaries — the feed of the
	// live service layer's event bus.
	Hooks = core.Hooks
	// OutageStatus is a point-in-time snapshot of one ongoing outage.
	OutageStatus = core.OutageStatus
	// OutageTrace is the provenance record behind one resolved outage
	// (Config.Tracing): the per-bin evidence chain — diverted-path samples,
	// localization steps, collateral folds, probe verdicts — delivered via
	// Hooks.TraceRecorded.
	OutageTrace = core.OutageTrace
	// TraceChapter is one bin's contribution to an OutageTrace.
	TraceChapter = core.TraceChapter

	// Dictionary maps community values to physical PoPs.
	Dictionary = communities.Dictionary
	// ColocationMap answers AS/facility/IXP colocation queries.
	ColocationMap = colo.Map
	// PoP references a city, facility or IXP.
	PoP = colo.PoP
	// OrgTable maps ASes to the organizations operating them.
	OrgTable = as2org.Table
)

// Incident kinds, re-exported.
const (
	IncidentLink     = core.IncidentLink
	IncidentAS       = core.IncidentAS
	IncidentOperator = core.IncidentOperator
	IncidentPoP      = core.IncidentPoP
)

// DefaultConfig returns the paper's parameters: Tfail=10%, 60 s bins,
// 2-day stable window, 95% colocation margin, 50% restore fraction, 12 h
// oscillation gap.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewDetector builds a sequential streaming detector over a mined
// dictionary, a merged colocation map and an optional AS-to-organization
// table.
func NewDetector(cfg Config, dict *Dictionary, cmap *ColocationMap, orgs *OrgTable) *Detector {
	return core.New(cfg, dict, cmap, orgs)
}

// NewEngine builds the sharded concurrent engine over the same inputs;
// shards <= 0 selects one shard worker per core. Call Close when done.
func NewEngine(cfg Config, dict *Dictionary, cmap *ColocationMap, orgs *OrgTable, shards int) *Engine {
	return core.NewEngine(cfg, dict, cmap, orgs, shards)
}
